//! VM operations on user pages: pin, unpin, map.
//!
//! §4.4.1 of the paper: DMA directly to/from user space requires pinning the
//! pages and making them addressable from the kernel. In DEC OSF/1 these
//! operations can only run in the application's context, so the *socket
//! layer* performs them incrementally as data is handed to the transport
//! layer. Their costs (Table 2) dominate the single-copy path's per-byte
//! budget, replacing the copy and checksum of the traditional path.
//!
//! The paper also describes the key optimization: "for applications that
//! reuse the same set of buffers repeatedly, this overhead can be avoided by
//! keeping the buffers pinned and mapped ... buffers can be unpinned lazily,
//! thus limiting the number of pages that an application can have pinned at
//! one time." [`VmSystem`] implements both the eager and the lazy policy.

use crate::config::MachineConfig;
use crate::TaskId;
use outboard_sim::obs::Scope;
use outboard_sim::Dur;
use std::collections::{HashMap, VecDeque};

/// Statistics over VM activity, for tests and the crossover experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Pin system calls issued.
    pub pin_calls: u64,
    /// Pages newly pinned.
    pub pages_pinned: u64,
    /// Unpin system calls issued.
    pub unpin_calls: u64,
    /// Pages actually unpinned.
    pub pages_unpinned: u64,
    /// Kernel-map calls issued.
    pub map_calls: u64,
    /// Pages newly mapped.
    pub pages_mapped: u64,
    /// Pages found already pinned (lazy-unpin reuse).
    pub cache_hits: u64,
    /// Cached pages evicted to honour the pinned limit.
    pub evictions: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PageState {
    /// Pinned and mapped, actively in use by an outstanding operation.
    Active { refs: u32 },
    /// Lazily released: still pinned+mapped, reusable at cache-hit cost.
    Cached,
}

/// Per-host VM system tracking pinned user pages.
#[derive(Debug)]
pub struct VmSystem {
    cfg: MachineConfig,
    lazy: bool,
    // lint: allow(nondet-order, keyed lookup; only whole-map retain, which is order-independent)
    pages: HashMap<(TaskId, u64), PageState>,
    /// LRU order of `Cached` pages (front = oldest).
    cached_lru: VecDeque<(TaskId, u64)>,
    stats: VmStats,
}

impl VmSystem {
    /// A VM system; `lazy_unpin` enables the §4.4.1 optimization.
    pub fn new(cfg: MachineConfig, lazy_unpin: bool) -> VmSystem {
        VmSystem {
            cfg,
            lazy: lazy_unpin,
            pages: HashMap::new(),
            cached_lru: VecDeque::new(),
            stats: VmStats::default(),
        }
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> VmStats {
        self.stats
    }

    /// Whether lazy unpinning is enabled.
    pub fn lazy(&self) -> bool {
        self.lazy
    }

    /// Maximum pages an application may keep pinned (config passthrough).
    pub fn page_limit(&self) -> usize {
        self.cfg.pinned_page_limit
    }

    /// Table 2: cost of pinning `n` pages in one call.
    pub fn pin_cost(&self, n: usize) -> Dur {
        if n == 0 {
            return Dur::ZERO;
        }
        Dur::from_micros_f64(self.cfg.pin_base_us + self.cfg.pin_per_page_us * n as f64)
    }

    /// Table 2: cost of unpinning `n` pages in one call.
    pub fn unpin_cost(&self, n: usize) -> Dur {
        if n == 0 {
            return Dur::ZERO;
        }
        Dur::from_micros_f64(self.cfg.unpin_base_us + self.cfg.unpin_per_page_us * n as f64)
    }

    /// Table 2: cost of mapping `n` pages into kernel space in one call.
    pub fn map_cost(&self, n: usize) -> Dur {
        if n == 0 {
            return Dur::ZERO;
        }
        Dur::from_micros_f64(self.cfg.map_base_us + self.cfg.map_per_page_us * n as f64)
    }

    fn vpns(&self, vaddr: u64, len: usize) -> std::ops::Range<u64> {
        let ps = self.cfg.page_size as u64;
        if len == 0 {
            return 0..0;
        }
        (vaddr / ps)..((vaddr + len as u64 - 1) / ps + 1)
    }

    /// Number of pages currently pinned (active + cached).
    pub fn pinned_page_count(&self) -> usize {
        self.pages.len()
    }

    /// Pin and map the pages backing `[vaddr, vaddr+len)` for a DMA
    /// operation, returning the CPU cost. With lazy unpinning, pages still
    /// cached from a previous operation cost only a lookup.
    pub fn prepare(&mut self, task: TaskId, vaddr: u64, len: usize) -> Dur {
        let mut new_pages = 0usize;
        let mut hits = 0usize;
        for vpn in self.vpns(vaddr, len) {
            match self.pages.get_mut(&(task, vpn)) {
                Some(PageState::Active { refs }) => {
                    *refs += 1;
                    hits += 1;
                }
                Some(state @ PageState::Cached) => {
                    *state = PageState::Active { refs: 1 };
                    self.cached_lru.retain(|k| k != &(task, vpn));
                    hits += 1;
                }
                None => {
                    self.pages
                        .insert((task, vpn), PageState::Active { refs: 1 });
                    new_pages += 1;
                }
            }
        }
        let mut cost = Dur::ZERO;
        if new_pages > 0 {
            self.stats.pin_calls += 1;
            self.stats.map_calls += 1;
            self.stats.pages_pinned += new_pages as u64;
            self.stats.pages_mapped += new_pages as u64;
            cost += self.pin_cost(new_pages) + self.map_cost(new_pages);
        }
        if hits > 0 {
            self.stats.cache_hits += hits as u64;
            cost += Dur::from_micros_f64(self.cfg.pin_cache_hit_us);
        }
        cost += self.enforce_limit_cost();
        cost
    }

    /// Release the pages backing `[vaddr, vaddr+len)` after the DMA
    /// completes. Eager mode unpins immediately (Table 2 cost); lazy mode
    /// parks the pages in the cache for free and only pays when the pinned
    /// limit forces eviction.
    pub fn release(&mut self, task: TaskId, vaddr: u64, len: usize) -> Dur {
        let mut released = 0usize;
        for vpn in self.vpns(vaddr, len) {
            if let Some(state) = self.pages.get_mut(&(task, vpn)) {
                if let PageState::Active { refs } = state {
                    *refs -= 1;
                    if *refs == 0 {
                        if self.lazy {
                            *state = PageState::Cached;
                            self.cached_lru.push_back((task, vpn));
                        } else {
                            self.pages.remove(&(task, vpn));
                        }
                        released += 1;
                    }
                }
            }
        }
        let mut cost = Dur::ZERO;
        if released > 0 && !self.lazy {
            self.stats.unpin_calls += 1;
            self.stats.pages_unpinned += released as u64;
            cost += self.unpin_cost(released);
        }
        cost += self.enforce_limit_cost();
        cost
    }

    /// Evict cached pages beyond the pinned-page limit (LRU order).
    fn enforce_limit_cost(&mut self) -> Dur {
        let mut evicted = 0usize;
        while self.pages.len() > self.cfg.pinned_page_limit {
            let Some(victim) = self.cached_lru.pop_front() else {
                // Every page is actively referenced; nothing evictable.
                break;
            };
            self.pages.remove(&victim);
            evicted += 1;
        }
        if evicted > 0 {
            self.stats.evictions += evicted as u64;
            self.stats.unpin_calls += 1;
            self.stats.pages_unpinned += evicted as u64;
            self.unpin_cost(evicted)
        } else {
            Dur::ZERO
        }
    }

    /// Publish VM activity into a registry scope: pin/unpin/map call and
    /// page counts, the pinned-page cache hit rate (hits per page-prepare,
    /// the §4.4.1 reuse payoff), and current pinned pages against the limit.
    pub fn publish_metrics(&self, s: &mut Scope<'_>) {
        let st = &self.stats;
        s.counter("pin_calls", st.pin_calls);
        s.counter("pages_pinned", st.pages_pinned);
        s.counter("unpin_calls", st.unpin_calls);
        s.counter("pages_unpinned", st.pages_unpinned);
        s.counter("map_calls", st.map_calls);
        s.counter("pages_mapped", st.pages_mapped);
        s.counter("cache_hits", st.cache_hits);
        s.counter("evictions", st.evictions);
        let prepared = st.pages_pinned + st.cache_hits;
        let hit_rate = if prepared == 0 {
            0.0
        } else {
            st.cache_hits as f64 / prepared as f64
        };
        s.frac("cache_hit_rate", hit_rate);
        s.counter("pinned_pages", self.pinned_page_count() as u64);
        s.counter("pinned_page_limit", self.page_limit() as u64);
    }

    /// Forget all pinned pages for a task (process exit).
    pub fn release_task(&mut self, task: TaskId) -> Dur {
        let before = self.pages.len();
        self.pages.retain(|(t, _), _| *t != task);
        self.cached_lru.retain(|(t, _)| *t != task);
        let n = before - self.pages.len();
        if n > 0 {
            self.stats.unpin_calls += 1;
            self.stats.pages_unpinned += n as u64;
            self.unpin_cost(n)
        } else {
            Dur::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(lazy: bool) -> VmSystem {
        VmSystem::new(MachineConfig::alpha_3000_400(), lazy)
    }

    #[test]
    fn table2_costs() {
        let v = sys(false);
        // Table 2 with n = 4 pages (one 32 KB aligned packet).
        assert!((v.pin_cost(4).as_micros_f64() - (35.0 + 29.0 * 4.0)).abs() < 1e-6);
        assert!((v.unpin_cost(4).as_micros_f64() - (48.0 + 3.9 * 4.0)).abs() < 1e-6);
        assert!((v.map_cost(4).as_micros_f64() - (6.0 + 4.5 * 4.0)).abs() < 1e-6);
        assert_eq!(v.pin_cost(0), Dur::ZERO);
    }

    #[test]
    fn eager_pin_release_cycle() {
        let mut v = sys(false);
        let t = TaskId(1);
        // 32 KB aligned at page 0: 4 pages.
        let prep = v.prepare(t, 0, 32 * 1024);
        let expect = v.pin_cost(4) + v.map_cost(4);
        assert_eq!(prep, expect);
        assert_eq!(v.pinned_page_count(), 4);
        let rel = v.release(t, 0, 32 * 1024);
        assert_eq!(rel, v.unpin_cost(4));
        assert_eq!(v.pinned_page_count(), 0);
        // Repeat: same full cost (no caching in eager mode).
        assert_eq!(v.prepare(t, 0, 32 * 1024), expect);
    }

    #[test]
    fn lazy_reuse_is_nearly_free() {
        let mut v = sys(true);
        let t = TaskId(1);
        let first = v.prepare(t, 0, 32 * 1024);
        assert_eq!(v.release(t, 0, 32 * 1024), Dur::ZERO, "lazy release free");
        let second = v.prepare(t, 0, 32 * 1024);
        assert!(
            second < first / 10,
            "cache hit {second:?} vs cold {first:?}"
        );
        assert_eq!(v.stats().cache_hits, 4);
        assert_eq!(v.stats().pages_unpinned, 0);
    }

    #[test]
    fn overlapping_ranges_refcount() {
        let mut v = sys(false);
        let t = TaskId(1);
        v.prepare(t, 0, 16 * 1024); // pages 0,1
        v.prepare(t, 8 * 1024, 16 * 1024); // pages 1,2: page1 refcounted
        assert_eq!(v.pinned_page_count(), 3);
        v.release(t, 0, 16 * 1024);
        // Page 1 still held by the second range.
        assert_eq!(v.pinned_page_count(), 2);
        v.release(t, 8 * 1024, 16 * 1024);
        assert_eq!(v.pinned_page_count(), 0);
    }

    #[test]
    fn lazy_limit_evicts_lru() {
        let mut cfg = MachineConfig::alpha_3000_400();
        cfg.pinned_page_limit = 8;
        let mut v = VmSystem::new(cfg, true);
        let t = TaskId(1);
        // Touch 16 distinct pages one at a time; cache cannot exceed 8.
        for i in 0..16u64 {
            v.prepare(t, i * 8192, 8192);
            v.release(t, i * 8192, 8192);
            assert!(v.pinned_page_count() <= 8);
        }
        assert_eq!(v.stats().evictions, 8);
        // Oldest pages were evicted: re-preparing page 0 is a cold pin,
        // which also forces one LRU eviction to stay within the limit.
        let cold = v.prepare(t, 0, 8192);
        assert_eq!(cold, v.pin_cost(1) + v.map_cost(1) + v.unpin_cost(1));
        // Most recent page is still cached.
        let hot = v.prepare(t, 15 * 8192, 8192);
        assert!(hot < cold);
    }

    #[test]
    fn active_pages_are_never_evicted() {
        let mut cfg = MachineConfig::alpha_3000_400();
        cfg.pinned_page_limit = 2;
        let mut v = VmSystem::new(cfg, true);
        let t = TaskId(1);
        // Pin 4 pages actively (DMA outstanding on all of them).
        v.prepare(t, 0, 32 * 1024);
        assert_eq!(v.pinned_page_count(), 4, "limit cannot evict active pages");
        v.release(t, 0, 32 * 1024);
        assert!(
            v.pinned_page_count() <= 2,
            "released pages trimmed to limit"
        );
    }

    #[test]
    fn release_task_cleans_up() {
        let mut v = sys(true);
        let t = TaskId(1);
        v.prepare(t, 0, 64 * 1024);
        v.release(t, 0, 64 * 1024);
        assert!(v.pinned_page_count() > 0);
        v.release_task(t);
        assert_eq!(v.pinned_page_count(), 0);
    }

    #[test]
    fn empty_range_is_free() {
        let mut v = sys(false);
        assert_eq!(v.prepare(TaskId(1), 123, 0), Dur::ZERO);
        assert_eq!(v.release(TaskId(1), 123, 0), Dur::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Matched prepare/release sequences always drain active pages, and
        /// the pinned count never exceeds limit + active pages.
        #[test]
        fn refcounts_balance(ops in proptest::collection::vec((0u64..32, 1usize..65536), 1..40),
                             lazy in any::<bool>()) {
            let mut v = VmSystem::new(MachineConfig::alpha_3000_400(), lazy);
            let t = TaskId(1);
            for &(page, len) in &ops {
                v.prepare(t, page * 8192, len);
            }
            for &(page, len) in &ops {
                v.release(t, page * 8192, len);
            }
            if lazy {
                prop_assert!(v.pinned_page_count() <= v.page_limit());
            } else {
                prop_assert_eq!(v.pinned_page_count(), 0);
            }
        }
    }
}
