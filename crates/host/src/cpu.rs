//! CPU serialization and the paper's measurement methodology.
//!
//! One CPU per host. All kernel and application work is serialized on it:
//! [`Cpu::run`] reserves the CPU for a duration starting no earlier than a
//! given instant and returns the completion time, which drives follow-on
//! events. Work that arrives while the CPU is busy simply starts later —
//! a boundary-dispatch approximation of preemptive interrupt handling that
//! keeps the simulation deterministic.
//!
//! Accounting reproduces §7.1 of the paper exactly. The experiments run
//! `ttcp` plus a compute-bound low-priority `util` process on each host:
//!
//! * time `ttcp` spends in user mode and in syscalls is charged to
//!   `ttcp(user)` / `ttcp(sys)`;
//! * interrupt-driven work (ACK handling, receive processing, DMA-completion
//!   handling) is charged to *whichever process happens to be active* — the
//!   measurement artifact the paper corrects for. When `ttcp` is on the CPU
//!   the charge lands in `ttcp(sys)`; when it is blocked, `util` is running
//!   and the charge lands in `util(sys)`;
//! * `util(user)` is whatever CPU remains, minus the ~7.5 % of wall time
//!   consumed by unaccounted background processes;
//! * utilization = (ttcp_user + ttcp_sys + util_sys) /
//!   (ttcp_user + ttcp_sys + util_sys + util_user).

use crate::config::MachineConfig;
use outboard_sim::obs::Scope;
use outboard_sim::{Dur, Time};

/// Which bucket a piece of CPU work is charged to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Charge {
    /// Application user-mode time (the ttcp loop itself).
    TtcpUser,
    /// Kernel work performed in the application's context (syscall path,
    /// including the socket layer's VM mapping work — §4.4.1).
    Syscall,
    /// Interrupt-level work (device interrupts, softnet protocol input,
    /// timers). Charged to whoever is active, per the paper's artifact.
    Interrupt,
}

/// Accumulated CPU accounting for one host.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuAccounting {
    /// User-mode time of the measured application.
    pub ttcp_user: Dur,
    /// Kernel time in the measured application's context.
    pub ttcp_sys: Dur,
    /// Interrupt work that landed while ttcp was off the CPU.
    pub util_sys: Dur,
    /// All interrupt-level work, regardless of which process it was charged
    /// to (the quantity the paper's artifact obscures — kept separately so
    /// reports can show the true interrupt share).
    pub intr: Dur,
    /// Total CPU-busy time (all charges).
    pub busy: Dur,
}

impl CpuAccounting {
    /// Communication CPU share per the paper's formula, given the elapsed
    /// wall time of the measurement and the background share.
    pub fn utilization(&self, elapsed: Dur, background_share: f64) -> f64 {
        let comm = (self.ttcp_user + self.ttcp_sys + self.util_sys).as_secs_f64();
        let avail = elapsed.as_secs_f64() * (1.0 - background_share);
        if avail <= 0.0 {
            return 0.0;
        }
        // util(user) = leftover cycles after communication and background.
        let util_user = (avail - comm).max(0.0);
        comm / (comm + util_user)
    }
}

/// One host CPU.
#[derive(Clone, Debug)]
pub struct Cpu {
    cfg: MachineConfig,
    busy_until: Time,
    /// True while ttcp is on the CPU (from syscall entry until it blocks or
    /// returns); decides where interrupt charges land.
    ttcp_on_cpu: bool,
    /// Accumulated accounting for the measured interval.
    pub acct: CpuAccounting,
}

impl Cpu {
    /// An idle CPU at time zero.
    pub fn new(cfg: MachineConfig) -> Cpu {
        Cpu {
            cfg,
            busy_until: Time::ZERO,
            ttcp_on_cpu: false,
            acct: CpuAccounting::default(),
        }
    }

    /// The machine model this CPU runs.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// When the last scheduled work completes.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Mark the measured application as on/off the CPU (syscall entry /
    /// block / return). Only affects interrupt charging.
    pub fn set_ttcp_on_cpu(&mut self, on: bool) {
        self.ttcp_on_cpu = on;
    }

    /// Whether the measured application currently holds the CPU.
    pub fn ttcp_on_cpu(&self) -> bool {
        self.ttcp_on_cpu
    }

    /// Serialize `dur` of work on this CPU, no earlier than `now`. Returns
    /// the completion time. Zero-duration work completes immediately (but
    /// still honours serialization).
    pub fn run(&mut self, now: Time, dur: Dur, charge: Charge) -> Time {
        let start = now.max(self.busy_until);
        let done = start + dur;
        self.busy_until = done;
        self.acct.busy += dur;
        match charge {
            Charge::TtcpUser => self.acct.ttcp_user += dur,
            Charge::Syscall => self.acct.ttcp_sys += dur,
            Charge::Interrupt => {
                self.acct.intr += dur;
                if self.ttcp_on_cpu {
                    self.acct.ttcp_sys += dur;
                } else {
                    self.acct.util_sys += dur;
                }
            }
        }
        done
    }

    /// Convenience: run work expressed in microseconds from the config-level
    /// cost tables.
    pub fn run_us(&mut self, now: Time, us: f64, charge: Charge) -> Time {
        self.run(now, Dur::from_micros_f64(us), charge)
    }

    /// Reset accounting (start of the measured interval).
    pub fn reset_accounting(&mut self) {
        self.acct = CpuAccounting::default();
    }

    /// Publish the §7.1 CPU time split into a registry scope: user, system
    /// (syscall-path kernel time), and interrupt shares of the scope's
    /// elapsed window, plus the raw nanosecond buckets.
    pub fn publish_metrics(&self, s: &mut Scope<'_>) {
        let elapsed = s.elapsed();
        let share = |d: Dur| {
            if elapsed.is_zero() {
                0.0
            } else {
                d.as_secs_f64() / elapsed.as_secs_f64()
            }
        };
        let a = &self.acct;
        // Syscall-path kernel time = everything that is neither user-mode
        // nor interrupt-level (interrupt charges land in ttcp_sys/util_sys
        // too, so busy - user - intr isolates the true syscall component).
        let sys = a.busy.saturating_sub(a.ttcp_user).saturating_sub(a.intr);
        s.frac("user_share", share(a.ttcp_user));
        s.frac("sys_share", share(sys));
        s.frac("intr_share", share(a.intr));
        s.frac("busy_frac", share(a.busy));
        s.counter("ttcp_user_ns", a.ttcp_user.as_nanos());
        s.counter("ttcp_sys_ns", a.ttcp_sys.as_nanos());
        s.counter("util_sys_ns", a.util_sys.as_nanos());
        s.counter("intr_ns", a.intr.as_nanos());
        s.counter("busy_ns", a.busy.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> Cpu {
        Cpu::new(MachineConfig::alpha_3000_400())
    }

    #[test]
    fn serialization_orders_work() {
        let mut c = cpu();
        let t1 = c.run(Time::ZERO, Dur::micros(100), Charge::Syscall);
        assert_eq!(t1, Time(100_000));
        // Work arriving at t=50us must wait until t=100us.
        let t2 = c.run(Time(50_000), Dur::micros(10), Charge::Interrupt);
        assert_eq!(t2, Time(110_000));
        // Work arriving after the CPU idles starts immediately.
        let t3 = c.run(Time(200_000), Dur::micros(5), Charge::Syscall);
        assert_eq!(t3, Time(205_000));
    }

    #[test]
    fn interrupt_charging_follows_active_process() {
        let mut c = cpu();
        c.set_ttcp_on_cpu(true);
        c.run(Time::ZERO, Dur::micros(10), Charge::Interrupt);
        assert_eq!(c.acct.ttcp_sys, Dur::micros(10));
        assert_eq!(c.acct.util_sys, Dur::ZERO);
        c.set_ttcp_on_cpu(false);
        c.run(Time(1_000_000), Dur::micros(10), Charge::Interrupt);
        assert_eq!(c.acct.util_sys, Dur::micros(10));
    }

    #[test]
    fn utilization_formula() {
        let mut c = cpu();
        // 200 ms of communication work over a 1 s run.
        c.run(Time::ZERO, Dur::millis(150), Charge::Syscall);
        c.run(c.busy_until(), Dur::millis(50), Charge::Interrupt);
        let u = c.acct.utilization(Dur::secs(1), 0.075);
        // comm = 0.2s, avail = 0.925s, util_user = 0.725s.
        let expect = 0.2 / 0.925;
        assert!((u - expect).abs() < 1e-9, "{u} vs {expect}");
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut c = cpu();
        c.run(Time::ZERO, Dur::secs(2), Charge::Syscall);
        let u = c.acct.utilization(Dur::secs(1), 0.075);
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_accounting_clears() {
        let mut c = cpu();
        c.run(Time::ZERO, Dur::micros(10), Charge::TtcpUser);
        c.reset_accounting();
        assert_eq!(c.acct, CpuAccounting::default());
        // busy_until survives reset (the CPU is still the same CPU).
        assert_eq!(c.busy_until(), Time(10_000));
    }
}
