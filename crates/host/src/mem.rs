//! Simulated user address spaces.
//!
//! Each task owns a contiguous buffer region holding *real bytes*; the CAB's
//! SDMA engine reads and writes them through the [`UserMemory`] trait, which
//! stands in for physical memory access after the VM system has pinned and
//! mapped the pages. Data integrity through the whole stack is checked
//! against these bytes end to end.

use crate::TaskId;
use std::collections::HashMap;

/// A failed user-memory access (bad task or out-of-range address).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFault {
    /// The task whose access faulted.
    pub task: TaskId,
    /// Faulting virtual address.
    pub vaddr: u64,
    /// Length of the attempted access.
    pub len: usize,
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "user memory fault: task {:?} vaddr {:#x} len {}",
            self.task, self.vaddr, self.len
        )
    }
}

impl std::error::Error for MemFault {}

/// Access to pinned user memory, as the DMA engine sees it.
pub trait UserMemory {
    /// Read `dst.len()` bytes from a task's address space at `vaddr`.
    fn read_user(&self, task: TaskId, vaddr: u64, dst: &mut [u8]) -> Result<(), MemFault>;
    /// Write `src` into a task's address space at `vaddr`.
    fn write_user(&mut self, task: TaskId, vaddr: u64, src: &[u8]) -> Result<(), MemFault>;
}

#[derive(Debug)]
struct Region {
    base: u64,
    data: Vec<u8>,
}

/// All user address spaces on one host.
#[derive(Debug, Default)]
pub struct HostMem {
    // lint: allow(nondet-order, keyed lookup by task id, never iterated)
    regions: HashMap<TaskId, Region>,
}

impl HostMem {
    /// An arena with no task regions.
    pub fn new() -> HostMem {
        HostMem::default()
    }

    /// Create (or replace) a task's buffer region of `len` bytes based at
    /// virtual address `base`.
    pub fn create_region(&mut self, task: TaskId, base: u64, len: usize) {
        self.regions.insert(
            task,
            Region {
                base,
                data: vec![0; len],
            },
        );
    }

    /// Base virtual address of a task's region.
    pub fn region_base(&self, task: TaskId) -> Option<u64> {
        self.regions.get(&task).map(|r| r.base)
    }

    /// Size of a task's buffer region.
    pub fn region_len(&self, task: TaskId) -> Option<usize> {
        self.regions.get(&task).map(|r| r.data.len())
    }

    /// Direct mutable access for test setup / application writes.
    pub fn region_mut(&mut self, task: TaskId) -> Option<&mut Vec<u8>> {
        self.regions.get_mut(&task).map(|r| &mut r.data)
    }

    /// Read-only view of a task's whole region.
    pub fn region(&self, task: TaskId) -> Option<&[u8]> {
        self.regions.get(&task).map(|r| r.data.as_slice())
    }

    fn slice_of(&self, task: TaskId, vaddr: u64, len: usize) -> Result<(usize, usize), MemFault> {
        let fault = MemFault { task, vaddr, len };
        let region = self.regions.get(&task).ok_or(fault)?;
        let off = vaddr.checked_sub(region.base).ok_or(fault)? as usize;
        let end = off.checked_add(len).ok_or(fault)?;
        if end > region.data.len() {
            return Err(fault);
        }
        Ok((off, end))
    }
}

impl UserMemory for HostMem {
    fn read_user(&self, task: TaskId, vaddr: u64, dst: &mut [u8]) -> Result<(), MemFault> {
        let (off, end) = self.slice_of(task, vaddr, dst.len())?;
        dst.copy_from_slice(&self.regions[&task].data[off..end]);
        Ok(())
    }

    fn write_user(&mut self, task: TaskId, vaddr: u64, src: &[u8]) -> Result<(), MemFault> {
        let (off, end) = self.slice_of(task, vaddr, src.len())?;
        let fault = MemFault {
            task,
            vaddr,
            len: src.len(),
        };
        let region = self.regions.get_mut(&task).ok_or(fault)?;
        region.data[off..end].copy_from_slice(src);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut hm = HostMem::new();
        let t = TaskId(1);
        hm.create_region(t, 0x1_0000, 4096);
        hm.write_user(t, 0x1_0000 + 100, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        hm.read_user(t, 0x1_0000 + 100, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn faults_on_bad_access() {
        let mut hm = HostMem::new();
        let t = TaskId(1);
        hm.create_region(t, 0x1000, 100);
        let mut buf = [0u8; 8];
        // Unknown task.
        assert!(hm.read_user(TaskId(9), 0x1000, &mut buf).is_err());
        // Below base.
        assert!(hm.read_user(t, 0xFF0, &mut buf).is_err());
        // Overruns the region.
        assert!(hm.read_user(t, 0x1000 + 96, &mut buf).is_err());
        assert!(hm.write_user(t, 0x1000 + 96, &buf).is_err());
        // Exactly at the end is fine.
        assert!(hm.read_user(t, 0x1000 + 92, &mut buf).is_ok());
    }

    #[test]
    fn regions_are_isolated() {
        let mut hm = HostMem::new();
        hm.create_region(TaskId(1), 0x1000, 64);
        hm.create_region(TaskId(2), 0x1000, 64);
        hm.write_user(TaskId(1), 0x1000, &[7; 8]).unwrap();
        let mut buf = [0u8; 8];
        hm.read_user(TaskId(2), 0x1000, &mut buf).unwrap();
        assert_eq!(buf, [0; 8], "same vaddr, different address space");
    }
}
