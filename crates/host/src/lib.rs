//! Host machine model.
//!
//! The paper's evaluation runs on two DEC Alpha workstations; this crate
//! substitutes a calibrated cost model for the real silicon (see DESIGN.md,
//! substitution table):
//!
//! * [`config`] — [`MachineConfig`] presets for the Alpha 3000/400 and the
//!   Alpha 3000/300LX, carrying every constant §7 of the paper reports
//!   (copy bandwidth 350 Mbit/s, checksum-read bandwidth 630 Mbit/s,
//!   300 µs per-packet overhead, Table 2 VM costs, 8 KB pages),
//! * [`memsys`] — per-byte cost functions with the cache-locality effect the
//!   paper observes at intermediate write sizes,
//! * [`vm`] — pinning / unpinning / mapping of user pages with Table 2's
//!   linear cost model, plus the lazy-unpin optimization of §4.4.1,
//! * [`cpu`] — CPU serialization and the paper's §7.1 accounting methodology
//!   (ttcp/util time buckets, interrupt-charging artifact, unaccounted
//!   background share),
//! * [`mem`] — simulated user address spaces holding real bytes, and the
//!   [`UserMemory`] trait the CAB's SDMA engine uses to move them.

#![warn(missing_docs)]

pub mod config;
pub mod cpu;
pub mod mem;
pub mod memsys;
pub mod vm;

pub use config::MachineConfig;
pub use cpu::{Charge, Cpu, CpuAccounting};
pub use mem::{HostMem, MemFault, UserMemory};
pub use memsys::MemorySystem;
pub use vm::VmSystem;

pub use outboard_mbuf::TaskId;
