//! Per-byte memory-system costs with cache locality.
//!
//! The paper measures per-byte costs by repeatedly copying/reading regions
//! whose size sets the cache locality (§7.3): a 1 MB copy region runs at
//! 350 Mbit/s, a 512 KB checksum read at 630 Mbit/s, and intermediate write
//! sizes (64 KB) show measurably better efficiency from cache reuse.
//!
//! We model effective bandwidth as a log-linear interpolation between a
//! fully-cached maximum (working set ≤ `cache_resident_at`) and a
//! no-locality minimum (working set ≥ `*_nolocality_at`).

use crate::config::MachineConfig;
use outboard_sim::Dur;

/// Bandwidth-based cost model for CPU data touching.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    cfg: MachineConfig,
}

impl MemorySystem {
    /// A memory system with the machine's bandwidth curve.
    pub fn new(cfg: MachineConfig) -> MemorySystem {
        MemorySystem { cfg }
    }

    /// The underlying machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Log-linear interpolation of bandwidth against working-set size.
    fn bw_for(&self, working_set: usize, bw_max: f64, bw_min: f64, nolocality_at: usize) -> f64 {
        let lo = self.cfg.cache_resident_at.max(1) as f64;
        let hi = nolocality_at.max(self.cfg.cache_resident_at + 1) as f64;
        let ws = (working_set.max(1) as f64).clamp(lo, hi);
        let frac = (ws.ln() - lo.ln()) / (hi.ln() - lo.ln());
        bw_max + (bw_min - bw_max) * frac
    }

    /// Effective memcpy bandwidth (Mbit/s) for a working set of `region`
    /// bytes.
    pub fn copy_bw_mbps(&self, region: usize) -> f64 {
        self.bw_for(
            region,
            self.cfg.copy_bw_max_mbps,
            self.cfg.copy_bw_min_mbps,
            self.cfg.copy_nolocality_at,
        )
    }

    /// Effective checksum-read bandwidth (Mbit/s).
    pub fn read_bw_mbps(&self, region: usize) -> f64 {
        self.bw_for(
            region,
            self.cfg.read_bw_max_mbps,
            self.cfg.read_bw_min_mbps,
            self.cfg.read_nolocality_at,
        )
    }

    /// CPU time to memory-copy `bytes`, with locality determined by the
    /// working set `region` (e.g. the TCP window on the unmodified transmit
    /// path, or the write size when data is re-used quickly).
    pub fn copy_cost(&self, bytes: usize, region: usize) -> Dur {
        if bytes == 0 {
            return Dur::ZERO;
        }
        Dur::for_bytes_at_bps(bytes as u64, self.copy_bw_mbps(region) * 1e6)
    }

    /// CPU time to read (checksum) `bytes` with working set `region`.
    pub fn read_cost(&self, bytes: usize, region: usize) -> Dur {
        if bytes == 0 {
            return Dur::ZERO;
        }
        Dur::for_bytes_at_bps(bytes as u64, self.read_bw_mbps(region) * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn ms() -> MemorySystem {
        MemorySystem::new(MachineConfig::alpha_3000_400())
    }

    #[test]
    fn paper_anchor_points() {
        let m = ms();
        // 1 MB copy region: exactly the no-locality bandwidth.
        assert!((m.copy_bw_mbps(1024 * 1024) - 350.0).abs() < 1e-9);
        // 512 KB read region: exactly the paper's 630 Mbit/s.
        assert!((m.read_bw_mbps(512 * 1024) - 630.0).abs() < 1e-9);
    }

    #[test]
    fn locality_is_monotone() {
        let m = ms();
        let mut prev = f64::INFINITY;
        for sz in [16usize, 64, 128, 256, 512, 1024].map(|k| k * 1024) {
            let bw = m.read_bw_mbps(sz);
            assert!(bw <= prev + 1e-9, "bandwidth must not grow with region");
            prev = bw;
        }
        // Small regions enjoy the cached maximum.
        assert!((m.read_bw_mbps(4 * 1024) - 850.0).abs() < 1e-9);
        assert!((m.copy_bw_mbps(64 * 1024) - 450.0).abs() < 1e-9);
    }

    #[test]
    fn costs_scale_linearly_in_bytes() {
        let m = ms();
        let one = m.copy_cost(32 * 1024, 1024 * 1024);
        let two = m.copy_cost(64 * 1024, 1024 * 1024);
        let ratio = two.as_nanos() as f64 / one.as_nanos() as f64;
        assert!((ratio - 2.0).abs() < 0.01);
        assert_eq!(m.copy_cost(0, 1024), Dur::ZERO);
        assert_eq!(m.read_cost(0, 1024), Dur::ZERO);
    }

    #[test]
    fn paper_732_copy_of_32k_at_window_locality() {
        // §7.3: copying 32 KB with no locality costs 32768*8/350e6 ≈ 749 us.
        let m = ms();
        let c = m.copy_cost(32 * 1024, 1024 * 1024);
        assert!((c.as_micros_f64() - 749.0).abs() < 1.0, "{c:?}");
        let r = m.read_cost(32 * 1024, 512 * 1024);
        assert!((r.as_micros_f64() - 416.1).abs() < 1.0, "{r:?}");
    }
}
