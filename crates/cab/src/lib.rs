//! The Gigabit Nectar CAB (Communication Acceleration Board) model.
//!
//! §2 of the paper, reproduced as a deterministic device model:
//!
//! * [`netmem`] — the outboard **network memory**: a page-granular pool in
//!   which every packet starts on a page boundary and all but the last page
//!   are full (the rule that forces fully-formed packets and symbolic
//!   packetization in the host stack),
//! * [`engine`] — the three concurrent DMA timelines: one **SDMA** engine
//!   (host ↔ network memory, scatter/gather) and two **MDMA** engines
//!   (network memory ↔ media),
//! * [`cab`] — the register-file-level interface the driver programs:
//!   transmit SDMA with **outboard checksum insertion** (seed + skip-words +
//!   saved body checksum for retransmission), receive processing with
//!   **auto-DMA buffers** and hardware receive checksums, packet
//!   alloc/free commands, and interrupt raising,
//! * [`mac`] — media access control: FIFO versus **logical channels**
//!   (§2.1), used by the head-of-line-blocking experiment,
//! * [`fault`] — seeded adaptor-side **fault injection**: transient
//!   SDMA/MDMA failures, engine wedges, checksum miscomputations, and
//!   allocation failures, exercising the driver's "transient
//!   out-of-resources" recovery paths.
//!
//! The model moves real bytes (checksums are computed over actual packet
//! contents) while engine occupancy advances virtual time according to the
//! Turbochannel/microcode throughput limits §7.1 describes.

#![warn(missing_docs)]

pub mod cab;
pub mod config;
pub mod engine;
pub mod fault;
pub mod mac;
pub mod netmem;
pub mod ownership;

pub use cab::{Cab, CabError, CabEvent, CabStats, ChecksumSpec, SdmaDst, SdmaRx, SdmaTx, SgEntry};
pub use config::CabConfig;
pub use fault::{FaultInjector as CabFaultInjector, TransferFault};
pub use mac::{HolResult, HolSim, MacMode, MacModel};
pub use netmem::{NetworkMemory, PacketId};
pub use ownership::{DmaEngine, DmaOwnershipViolation, ViolationKind};
