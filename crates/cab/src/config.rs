//! CAB configuration.
//!
//! Constants anchored in the paper:
//!
//! * HIPPI line rate 100 MByte/s (800 Mbit/s) — §2.1,
//! * CAB hardware designed for 300 Mbit/s but "the microcode currently
//!   limits throughput to less than half of that. The bottleneck is the
//!   transfer of data across the Turbochannel" — §7.1. Raw HIPPI tops out
//!   around 140 Mbit/s in Figure 5(a), which pins the effective SDMA
//!   bandwidth near 150 Mbit/s,
//! * auto-DMA delivers "the first 176 words of the packet" — §4.3,
//! * MTU 32 KB — §7.1.

use outboard_wire::hippi::RX_CSUM_SKIP_WORDS;

/// Static configuration of one CAB.
#[derive(Clone, Debug)]
pub struct CabConfig {
    /// Network memory size, bytes.
    pub net_mem_bytes: usize,
    /// Network memory page size, bytes (packets start page-aligned).
    pub page_size: usize,
    /// Effective SDMA bandwidth over the Turbochannel under the current
    /// microcode, Mbit/s (before the host's `tc_speed_scale`).
    pub sdma_bw_mbps: f64,
    /// Per-SDMA-request setup cost on the engine, microseconds.
    pub sdma_setup_us: f64,
    /// Extra engine time per scatter/gather entry, microseconds (the
    /// microcode's per-descriptor programming cost).
    pub sdma_per_sg_us: f64,
    /// Extra engine time when a transfer edge is not burst-aligned,
    /// microseconds per misaligned edge (§7.1: "dealing with alignment
    /// constraints ... often requires the use of short bursts").
    pub sdma_misalign_us: f64,
    /// Burst alignment the SDMA engine prefers, bytes (8 words).
    pub burst_align: usize,
    /// Media (HIPPI) line rate, Mbit/s.
    pub media_bw_mbps: f64,
    /// Per-packet MDMA setup, microseconds.
    pub mdma_setup_us: f64,
    /// Auto-DMA buffer size in 32-bit words (first L words of each received
    /// packet are pushed to host memory with the interrupt).
    pub autodma_words: usize,
    /// Word offset at which the receive checksum engine starts summing.
    pub rx_csum_skip_words: usize,
    /// Number of logical channels the MAC supports.
    pub num_channels: usize,
    /// Scale applied to `sdma_bw_mbps` for the host's Turbochannel speed.
    pub tc_speed_scale: f64,
}

impl Default for CabConfig {
    fn default() -> CabConfig {
        CabConfig {
            net_mem_bytes: 8 * 1024 * 1024,
            page_size: 4 * 1024,
            sdma_bw_mbps: 150.0,
            sdma_setup_us: 30.0,
            sdma_per_sg_us: 2.0,
            sdma_misalign_us: 5.0,
            burst_align: 32,
            media_bw_mbps: 800.0,
            mdma_setup_us: 10.0,
            autodma_words: 176,
            rx_csum_skip_words: RX_CSUM_SKIP_WORDS,
            num_channels: 16,
            tc_speed_scale: 1.0,
        }
    }
}

impl CabConfig {
    /// Effective SDMA bandwidth in bit/s after the Turbochannel scale.
    pub fn sdma_bps(&self) -> f64 {
        self.sdma_bw_mbps * 1e6 * self.tc_speed_scale
    }

    /// Media bandwidth in bit/s.
    pub fn media_bps(&self) -> f64 {
        self.media_bw_mbps * 1e6
    }

    /// Auto-DMA buffer size in bytes.
    pub fn autodma_bytes(&self) -> usize {
        self.autodma_words * 4
    }

    /// Pages needed for a packet of `len` bytes.
    pub fn pages_for(&self, len: usize) -> usize {
        len.div_ceil(self.page_size).max(1)
    }

    /// Total page count in network memory.
    pub fn total_pages(&self) -> usize {
        self.net_mem_bytes / self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_anchors() {
        let c = CabConfig::default();
        assert_eq!(c.media_bw_mbps, 800.0, "100 MByte/s HIPPI");
        assert_eq!(c.autodma_words, 176, "first 176 words auto-DMAed");
        assert!(c.sdma_bw_mbps < 300.0 / 2.0 + 1.0, "microcode limit");
    }

    #[test]
    fn derived_quantities() {
        let mut c = CabConfig::default();
        assert_eq!(c.autodma_bytes(), 704);
        assert_eq!(c.total_pages(), 2048);
        assert_eq!(c.pages_for(1), 1);
        assert_eq!(c.pages_for(4 * 1024), 1);
        assert_eq!(c.pages_for(4 * 1024 + 1), 2);
        assert_eq!(c.pages_for(32 * 1024 + 40), 9);
        c.tc_speed_scale = 0.5;
        assert_eq!(c.sdma_bps(), 75e6);
    }
}
