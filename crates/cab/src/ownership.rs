//! DMA ownership checking (the `dma-check` feature).
//!
//! The paper's single-copy path is safe only because ownership of every
//! outboard byte is unambiguous: the host, the SDMA engine, and the two
//! MDMA engines never touch a packet buffer concurrently, and the
//! `uiowcabhdr` DMA counters (§4.4.2, our `sockbuf::UioCounters`) exist
//! precisely so the host never frees or reuses a buffer an engine is still
//! working on. On real hardware a violation is silent corruption on the
//! wire; here it becomes a typed error.
//!
//! The journal models each engine's claim on a packet as a transfer
//! *window* `[start, end)` in simulated time (a wedged engine holds an
//! open-ended window until board reset). Checked invariants:
//!
//! * **Overlap** — two different engines may not hold windows on the same
//!   packet at the same time. The one sanctioned concurrency of §4.3 is
//!   whitelisted: the checksum engine computes *during* the SDMA gather
//!   (transmit) and during MDMA inflow (receive).
//! * **Use-after-free** — a transfer naming a packet that was once live
//!   and has been freed is a dangling DMA, distinct from a plain unknown
//!   id (packet ids are never reused, so the two are distinguishable).
//! * **Free-while-DMA** — the host freeing a packet inside an engine's
//!   open window is exactly the hazard the DMA counters guard against;
//!   the free is refused and the violation recorded.
//!
//! Everything here is compiled unconditionally (so `CabError::Ownership`
//! always exists and drivers can match on it); the journal is only
//! *instantiated and consulted* when the `dma-check` feature is on.

use crate::netmem::PacketId;
use outboard_sim::Time;
use std::collections::BTreeMap;

/// An agent that can claim a packet buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DmaEngine {
    /// The host CPU (PIO and buffer lifetime management).
    Host,
    /// The host-bus SDMA engine (gather on transmit, copy-out on receive).
    Sdma,
    /// The media-side transmit MDMA engine.
    MdmaTx,
    /// The media-side receive MDMA engine.
    MdmaRx,
    /// The outboard checksum engine (runs concurrently with SDMA gather
    /// and MDMA inflow by design, §4.3).
    ChecksumEngine,
}

impl DmaEngine {
    fn name(self) -> &'static str {
        match self {
            DmaEngine::Host => "host",
            DmaEngine::Sdma => "sdma",
            DmaEngine::MdmaTx => "mdma_tx",
            DmaEngine::MdmaRx => "mdma_rx",
            DmaEngine::ChecksumEngine => "csum",
        }
    }
}

/// What went wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A second engine touched a packet inside another engine's window.
    OverlappingDma,
    /// A transfer named a packet that was live once and has been freed.
    UseAfterFree,
    /// The host freed a packet inside an engine's open window.
    FreeWhileDma,
}

/// A checked-invariant failure, surfaced as [`crate::CabError::Ownership`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaOwnershipViolation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// The packet involved.
    pub packet: PacketId,
    /// The agent whose access tripped the check.
    pub actor: DmaEngine,
    /// The agent holding the conflicting claim (for use-after-free, the
    /// last engine known to have held the buffer, or `Host`).
    pub holder: DmaEngine,
    /// Simulated time of the offending access.
    pub at: Time,
}

impl std::fmt::Display for DmaOwnershipViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            ViolationKind::OverlappingDma => "overlapping DMA",
            ViolationKind::UseAfterFree => "use after free",
            ViolationKind::FreeWhileDma => "free while DMA active",
        };
        write!(
            f,
            "{what} on packet {:?}: {} vs holder {} at {:?}",
            self.packet,
            self.actor.name(),
            self.holder.name(),
            self.at
        )
    }
}

/// May these two engines hold windows on one packet concurrently?
fn sanctioned_pair(a: DmaEngine, b: DmaEngine) -> bool {
    matches!(
        (a, b),
        (DmaEngine::Sdma, DmaEngine::ChecksumEngine)
            | (DmaEngine::ChecksumEngine, DmaEngine::Sdma)
            | (DmaEngine::MdmaRx, DmaEngine::ChecksumEngine)
            | (DmaEngine::ChecksumEngine, DmaEngine::MdmaRx)
    )
}

#[derive(Clone, Copy, Debug)]
struct Window {
    engine: DmaEngine,
    /// `None` = open-ended: the engine wedged mid-transfer and holds the
    /// buffer until board reset.
    end: Option<Time>,
}

/// Per-packet transfer windows plus the violations seen so far.
#[derive(Debug, Default)]
pub struct OwnershipJournal {
    windows: BTreeMap<u64, Vec<Window>>,
    /// Last engine that ever held each retired packet (use-after-free
    /// attribution). Bounded by total allocations; `dma-check` is a
    /// test/CI feature, so the memory is acceptable.
    last_holder: BTreeMap<u64, DmaEngine>,
    violations: Vec<DmaOwnershipViolation>,
    transitions: u64,
}

impl OwnershipJournal {
    /// Windows whose end is `<= now` have completed; drop them.
    fn prune(windows: &mut Vec<Window>, now: Time) {
        windows.retain(|w| w.end.is_none_or(|e| e > now));
    }

    /// Would `engine` starting a transfer on live packet `id` at `now`
    /// conflict with an open window? Record and return the violation if so.
    pub fn check_transfer(
        &mut self,
        id: PacketId,
        engine: DmaEngine,
        now: Time,
    ) -> Result<(), DmaOwnershipViolation> {
        if let Some(ws) = self.windows.get_mut(&id.0) {
            Self::prune(ws, now);
            if let Some(w) = ws
                .iter()
                .find(|w| w.engine != engine && !sanctioned_pair(w.engine, engine))
            {
                let v = DmaOwnershipViolation {
                    kind: ViolationKind::OverlappingDma,
                    packet: id,
                    actor: engine,
                    holder: w.engine,
                    at: now,
                };
                self.violations.push(v);
                return Err(v);
            }
        }
        Ok(())
    }

    /// A transfer on a packet that no longer exists: if it ever existed
    /// this is a dangling DMA. Records and returns the violation, or
    /// `None` when the id was never allocated (plain unknown packet).
    pub fn check_use_after_free(
        &mut self,
        id: PacketId,
        engine: DmaEngine,
        now: Time,
        ever_allocated: bool,
    ) -> Option<DmaOwnershipViolation> {
        if !ever_allocated {
            return None;
        }
        let holder = self
            .last_holder
            .get(&id.0)
            .copied()
            .unwrap_or(DmaEngine::Host);
        let v = DmaOwnershipViolation {
            kind: ViolationKind::UseAfterFree,
            packet: id,
            actor: engine,
            holder,
            at: now,
        };
        self.violations.push(v);
        Some(v)
    }

    /// Record a transfer window. `end == None` marks a wedged engine
    /// seizing the buffer until reset.
    pub fn record(&mut self, id: PacketId, engine: DmaEngine, end: Option<Time>) {
        self.transitions += 1;
        self.last_holder.insert(id.0, engine);
        self.windows
            .entry(id.0)
            .or_default()
            .push(Window { engine, end });
    }

    /// Host free: refuse (and record) when any engine window is open.
    pub fn check_host_free(
        &mut self,
        id: PacketId,
        now: Time,
    ) -> Result<(), DmaOwnershipViolation> {
        if let Some(ws) = self.windows.get_mut(&id.0) {
            Self::prune(ws, now);
            if let Some(w) = ws.first() {
                let v = DmaOwnershipViolation {
                    kind: ViolationKind::FreeWhileDma,
                    packet: id,
                    actor: DmaEngine::Host,
                    holder: w.engine,
                    at: now,
                };
                self.violations.push(v);
                return Err(v);
            }
        }
        Ok(())
    }

    /// The packet is gone (freed by host after a clean check, released by
    /// an engine at the end of its own window, or dropped by board reset):
    /// forget its windows.
    pub fn release(&mut self, id: PacketId) {
        self.windows.remove(&id.0);
    }

    /// Board reset: every window dies with the outboard state.
    pub fn release_all(&mut self) {
        self.windows.clear();
    }

    /// Violations recorded so far (accumulates across resets).
    pub fn violations(&self) -> &[DmaOwnershipViolation] {
        &self.violations
    }

    /// Total windows recorded (journal activity check for tests).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outboard_sim::Dur;

    fn t(us: u64) -> Time {
        Time::ZERO + Dur::from_micros_f64(us as f64)
    }

    #[test]
    fn sequential_windows_do_not_conflict() {
        let mut j = OwnershipJournal::default();
        let id = PacketId(1);
        j.check_transfer(id, DmaEngine::Sdma, t(0)).unwrap();
        j.record(id, DmaEngine::Sdma, Some(t(10)));
        // MDMA starts exactly when SDMA finishes: half-open windows, clean.
        j.check_transfer(id, DmaEngine::MdmaTx, t(10)).unwrap();
        j.record(id, DmaEngine::MdmaTx, Some(t(20)));
        assert!(j.violations().is_empty());
    }

    #[test]
    fn concurrent_engines_conflict() {
        let mut j = OwnershipJournal::default();
        let id = PacketId(2);
        j.record(id, DmaEngine::Sdma, Some(t(10)));
        let v = j.check_transfer(id, DmaEngine::MdmaTx, t(5)).unwrap_err();
        assert_eq!(v.kind, ViolationKind::OverlappingDma);
        assert_eq!(v.holder, DmaEngine::Sdma);
        assert_eq!(j.violations().len(), 1);
    }

    #[test]
    fn checksum_engine_is_sanctioned_with_sdma() {
        let mut j = OwnershipJournal::default();
        let id = PacketId(3);
        j.record(id, DmaEngine::Sdma, Some(t(10)));
        j.check_transfer(id, DmaEngine::ChecksumEngine, t(5))
            .unwrap();
        assert!(j.violations().is_empty());
    }

    #[test]
    fn wedged_window_holds_until_release_all() {
        let mut j = OwnershipJournal::default();
        let id = PacketId(4);
        j.record(id, DmaEngine::Sdma, None);
        // Long after, still held.
        let v = j.check_host_free(id, t(1_000_000)).unwrap_err();
        assert_eq!(v.kind, ViolationKind::FreeWhileDma);
        j.release_all();
        j.check_host_free(id, t(1_000_001)).unwrap();
    }

    #[test]
    fn host_free_after_window_closes_is_clean() {
        let mut j = OwnershipJournal::default();
        let id = PacketId(5);
        j.record(id, DmaEngine::Sdma, Some(t(10)));
        j.check_host_free(id, t(10)).unwrap();
    }
}
