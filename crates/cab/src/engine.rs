//! DMA engine timelines.
//!
//! "All DMA engines can operate at the same time" (§2.1): each engine is an
//! independent busy-until timeline. A request submitted at `now` starts when
//! the engine frees up and occupies it for a duration computed from the
//! engine's setup and bandwidth model. The caller schedules the completion
//! event at the returned time.
//!
//! The occupancy bookkeeping itself lives in [`outboard_sim::obs::BusyTracker`]
//! so the same busy-fraction accounting feeds the metrics registry for every
//! serialized resource in the workspace (DMA engines here, the host CPU in
//! `outboard-host`).

use outboard_sim::obs::BusyTracker;
use outboard_sim::{Dur, Time};

/// One DMA engine's occupancy timeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineTimeline {
    timeline: BusyTracker,
    /// Requests processed.
    pub requests: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    wedged: bool,
}

impl EngineTimeline {
    /// An idle engine at time zero.
    pub fn new() -> EngineTimeline {
        EngineTimeline::default()
    }

    /// When the current backlog drains.
    pub fn busy_until(&self) -> Time {
        self.timeline.busy_until()
    }

    /// Occupy the engine for a transfer of `bytes` at `bps` with `setup`
    /// fixed overhead, starting no earlier than `now`. Returns completion.
    pub fn run(&mut self, now: Time, setup: Dur, bytes: usize, bps: f64) -> Time {
        let xfer = if bytes == 0 {
            Dur::ZERO
        } else {
            Dur::for_bytes_at_bps(bytes as u64, bps)
        };
        self.requests += 1;
        self.bytes += bytes as u64;
        self.timeline.occupy(now, setup + xfer)
    }

    /// Wedge the engine: it accepts no further requests until reset.
    pub fn wedge(&mut self) {
        self.wedged = true;
    }

    /// Clear a wedge (board reset).
    pub fn clear_wedge(&mut self) {
        self.wedged = false;
    }

    /// Is the engine wedged?
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Cumulative busy time.
    pub fn total_busy(&self) -> Dur {
        self.timeline.total_busy()
    }

    /// Engine utilization over an elapsed interval.
    pub fn utilization(&self, elapsed: Dur) -> f64 {
        self.timeline.busy_fraction(elapsed)
    }

    /// The underlying occupancy tracker (for metrics publication).
    pub fn tracker(&self) -> &BusyTracker {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_back_to_back_requests() {
        let mut e = EngineTimeline::new();
        // 1250 bytes at 10 Mbit/s = 1 ms; setup 100 us.
        let t1 = e.run(Time::ZERO, Dur::micros(100), 1250, 10e6);
        assert_eq!(t1, Time::ZERO + Dur::micros(1100));
        let t2 = e.run(Time::ZERO, Dur::micros(100), 1250, 10e6);
        assert_eq!(t2, Time::ZERO + Dur::micros(2200));
        assert_eq!(e.requests, 2);
        assert_eq!(e.bytes, 2500);
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut e = EngineTimeline::new();
        e.run(Time::ZERO, Dur::micros(10), 0, 1e6);
        e.run(Time(1_000_000), Dur::micros(10), 0, 1e6);
        assert_eq!(e.total_busy(), Dur::micros(20));
        assert!((e.utilization(Dur::millis(2)) - 0.01).abs() < 1e-9);
    }
}
