//! Media access control: FIFO versus logical channels (§2.1).
//!
//! "The simplest MAC algorithm for a switch-based network is to send packets
//! in FIFO order. However ... if the destination of the packet at the head
//! of the queue is busy, the node cannot send, even if the destinations of
//! other packets are reachable. Analysis shows that one can utilize at most
//! 58% of the network bandwidth, assuming random traffic [Hluchyj-Karol].
//! The CAB uses multiple 'logical channels', queues of packets with
//! different destinations, to get around this problem."
//!
//! [`HolSim`] is a slotted input-queued crossbar simulation that reproduces
//! the 58.6 % saturation limit for a FIFO MAC and shows logical channels
//! recovering utilization as the channel count grows. The `hol` bench binary
//! regenerates the claim.

use outboard_sim::Pcg32;
use std::collections::VecDeque;

/// MAC queueing discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MacMode {
    /// One FIFO per node; only the head packet is eligible (HOL blocking).
    Fifo,
    /// `channels` queues per node; packets are hashed to a channel by
    /// destination and every channel head is eligible. With at least as
    /// many channels as destinations this is per-destination queueing.
    LogicalChannels {
        /// Number of queues per node.
        channels: usize,
    },
}

/// The MAC abstraction the CAB exposes: pick which queued packet may be
/// offered to the switch this slot.
#[derive(Clone, Debug)]
pub struct MacModel {
    /// The configured discipline.
    pub mode: MacMode,
}

impl MacModel {
    /// A MAC with the given discipline.
    pub fn new(mode: MacMode) -> MacModel {
        MacModel { mode }
    }

    /// Channel a packet for `dst` is queued on.
    pub fn channel_for(&self, dst: usize) -> usize {
        match self.mode {
            MacMode::Fifo => 0,
            MacMode::LogicalChannels { channels } => dst % channels.max(1),
        }
    }

    /// Number of queues this MAC maintains.
    pub fn queue_count(&self) -> usize {
        match self.mode {
            MacMode::Fifo => 1,
            MacMode::LogicalChannels { channels } => channels.max(1),
        }
    }
}

/// Result of a saturation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HolResult {
    /// Switch slots simulated.
    pub slots: u64,
    /// Packets delivered across all outputs.
    pub delivered: u64,
    /// Input-slots where a node with backlog sent nothing (head-of-line
    /// blocking or lost arbitration) — the waste the logical channels buy
    /// back.
    pub stalls: u64,
    /// Mean fraction of output capacity used (delivered / (nodes × slots)).
    pub utilization: f64,
}

/// Slotted N×N crossbar with input queueing under saturated uniform random
/// traffic.
pub struct HolSim {
    n: usize,
    mac: MacModel,
    rng: Pcg32,
    /// Per node, per channel: FIFO of destination indices.
    queues: Vec<Vec<VecDeque<usize>>>,
    /// Queue depth maintained per node (backlog under saturation).
    depth: usize,
    /// Cumulative input-slots stalled with backlog (see [`HolResult::stalls`]).
    stalls: u64,
}

impl HolSim {
    /// An `n`-by-`n` crossbar with saturated backlogs.
    pub fn new(n: usize, mode: MacMode, seed: u64) -> HolSim {
        assert!(n >= 2);
        let mac = MacModel::new(mode);
        let mut sim = HolSim {
            n,
            queues: vec![vec![VecDeque::new(); mac.queue_count()]; n],
            mac,
            rng: Pcg32::new(seed),
            depth: 64,
            stalls: 0,
        };
        sim.top_up();
        sim
    }

    /// Keep each node's backlog at `depth` packets with uniform random
    /// destinations (saturation assumption).
    fn top_up(&mut self) {
        for node in 0..self.n {
            let total: usize = self.queues[node].iter().map(|q| q.len()).sum();
            for _ in total..self.depth {
                let dst = loop {
                    let d = self.rng.below(self.n as u32) as usize;
                    if d != node {
                        break d;
                    }
                };
                let ch = self.mac.channel_for(dst);
                self.queues[node][ch].push_back(dst);
            }
        }
    }

    /// Run `slots` switch slots under saturation; each output accepts at
    /// most one packet per slot, chosen uniformly among the inputs offering
    /// to it.
    pub fn run(&mut self, slots: u64) -> HolResult {
        let mut delivered = 0u64;
        let stalls_before = self.stalls;
        for _ in 0..slots {
            delivered += self.one_slot();
            self.top_up();
        }
        HolResult {
            slots,
            delivered,
            stalls: self.stalls - stalls_before,
            utilization: delivered as f64 / (slots as f64 * self.n as f64),
        }
    }

    /// Cumulative stalled input-slots across every slot simulated so far.
    pub fn total_stalls(&self) -> u64 {
        self.stalls
    }

    /// One crossbar slot: collect offers (one per channel head), grant one
    /// packet per output among non-busy inputs. Returns packets delivered.
    fn one_slot(&mut self) -> u64 {
        let mut delivered = 0u64;
        let mut offers_per_output: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.n];
        for node in 0..self.n {
            for (ch, q) in self.queues[node].iter().enumerate() {
                if let Some(&dst) = q.front() {
                    offers_per_output[dst].push((node, ch));
                }
            }
        }
        let mut input_busy = vec![false; self.n];
        let mut order: Vec<usize> = (0..self.n).collect();
        self.rng.shuffle(&mut order);
        for out in order {
            let mut contenders: Vec<(usize, usize)> = offers_per_output[out]
                .iter()
                .copied()
                .filter(|&(node, _)| !input_busy[node])
                .collect();
            if contenders.is_empty() {
                continue;
            }
            let pick = self.rng.below(contenders.len() as u32) as usize;
            let (node, ch) = contenders.swap_remove(pick);
            input_busy[node] = true;
            // The offer came from this queue's head, so it must still be
            // there — but an arbitration bug should cost a grant, not the
            // whole simulation.
            let Some(dst) = self.queues[node][ch].pop_front() else {
                continue;
            };
            debug_assert_eq!(dst, out);
            delivered += 1;
        }
        // An input that had backlog but moved nothing this slot stalled.
        for (node, busy) in input_busy.iter().enumerate().take(self.n) {
            if !busy && self.queues[node].iter().any(|q| !q.is_empty()) {
                self.stalls += 1;
            }
        }
        delivered
    }
}

/// Result of a finite-load run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadResult {
    /// Packets that arrived at the inputs.
    pub offered: u64,
    /// Packets delivered to the outputs.
    pub delivered: u64,
    /// Mean queue depth per node at the end (instability indicator).
    pub mean_backlog: f64,
}

impl HolSim {
    /// Run with Bernoulli arrivals: each slot, each node receives a new
    /// packet with probability `load` (uniform random destination).
    /// Below the saturation throughput queues stay bounded; above it they
    /// grow without bound — which is how the Hluchyj-Karol limit shows up
    /// for finite load.
    pub fn run_with_load(&mut self, slots: u64, load: f64) -> LoadResult {
        assert!((0.0..=1.0).contains(&load));
        // Empty the saturation backlog first.
        for q in self.queues.iter_mut().flatten() {
            q.clear();
        }
        self.depth = 0; // disable top-up
        let mut offered = 0u64;
        let mut delivered = 0u64;
        for _ in 0..slots {
            // Arrivals.
            for node in 0..self.n {
                if self.rng.chance(load) {
                    offered += 1;
                    let dst = loop {
                        let d = self.rng.below(self.n as u32) as usize;
                        if d != node {
                            break d;
                        }
                    };
                    let ch = self.mac.channel_for(dst);
                    self.queues[node][ch].push_back(dst);
                }
            }
            delivered += self.one_slot();
        }
        let backlog: usize = self.queues.iter().flatten().map(|q| q.len()).sum();
        LoadResult {
            offered,
            delivered,
            mean_backlog: backlog as f64 / self.n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mapping() {
        let fifo = MacModel::new(MacMode::Fifo);
        assert_eq!(fifo.queue_count(), 1);
        assert_eq!(fifo.channel_for(5), 0);
        let lc = MacModel::new(MacMode::LogicalChannels { channels: 4 });
        assert_eq!(lc.queue_count(), 4);
        assert_eq!(lc.channel_for(5), 1);
        assert_eq!(lc.channel_for(8), 0);
    }

    #[test]
    fn fifo_saturates_near_58_percent() {
        // Hluchyj-Karol: HOL blocking limits an input-FIFO switch to
        // 2 - sqrt(2) ≈ 0.586 under uniform random traffic (large N).
        let mut sim = HolSim::new(16, MacMode::Fifo, 42);
        let r = sim.run(4000);
        assert!(
            (0.52..0.66).contains(&r.utilization),
            "FIFO utilization {} outside HOL band",
            r.utilization
        );
    }

    #[test]
    fn logical_channels_recover_utilization() {
        let mut sim = HolSim::new(16, MacMode::LogicalChannels { channels: 16 }, 42);
        let r = sim.run(4000);
        assert!(
            r.utilization > 0.9,
            "per-destination channels should nearly saturate, got {}",
            r.utilization
        );
    }

    #[test]
    fn more_channels_monotonically_help() {
        let mut prev = 0.0;
        for channels in [1usize, 2, 4, 16] {
            let mut sim = HolSim::new(16, MacMode::LogicalChannels { channels }, 7);
            let u = sim.run(2000).utilization;
            assert!(
                u + 0.03 >= prev,
                "{channels} channels gave {u}, below previous {prev}"
            );
            prev = u;
        }
    }

    #[test]
    fn one_logical_channel_equals_fifo() {
        let u_fifo = HolSim::new(8, MacMode::Fifo, 11).run(3000).utilization;
        let u_lc1 = HolSim::new(8, MacMode::LogicalChannels { channels: 1 }, 11)
            .run(3000)
            .utilization;
        assert!((u_fifo - u_lc1).abs() < 0.05, "{u_fifo} vs {u_lc1}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = HolSim::new(8, MacMode::Fifo, 99).run(500);
        let b = HolSim::new(8, MacMode::Fifo, 99).run(500);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.stalls, b.stalls);
    }

    #[test]
    fn fifo_stalls_more_than_logical_channels() {
        let fifo = HolSim::new(16, MacMode::Fifo, 42).run(2000);
        let lc = HolSim::new(16, MacMode::LogicalChannels { channels: 16 }, 42).run(2000);
        // Under saturation every input always has backlog, so
        // stalls + delivered == inputs × slots.
        assert_eq!(fifo.stalls + fifo.delivered, 16 * 2000);
        assert!(
            fifo.stalls > lc.stalls * 2,
            "HOL blocking should dominate FIFO stalls: {} vs {}",
            fifo.stalls,
            lc.stalls
        );
    }
}

#[cfg(test)]
mod load_tests {
    use super::*;

    #[test]
    fn fifo_stable_below_hol_limit_unstable_above() {
        // Load 0.45 < 0.586: bounded queues, everything delivered.
        let mut sim = HolSim::new(16, MacMode::Fifo, 5);
        let r = sim.run_with_load(20_000, 0.45);
        assert!(
            r.mean_backlog < 20.0,
            "stable load built a backlog of {}",
            r.mean_backlog
        );
        assert!(r.delivered as f64 >= r.offered as f64 * 0.98);

        // Load 0.75 > 0.586: FIFO queues grow without bound.
        let mut sim = HolSim::new(16, MacMode::Fifo, 5);
        let r = sim.run_with_load(20_000, 0.75);
        assert!(
            r.mean_backlog > 500.0,
            "overload should be unstable, backlog {}",
            r.mean_backlog
        );
    }

    #[test]
    fn logical_channels_stable_where_fifo_is_not() {
        // The same 0.75 load is fine with per-destination channels.
        let mut sim = HolSim::new(16, MacMode::LogicalChannels { channels: 16 }, 5);
        let r = sim.run_with_load(20_000, 0.75);
        assert!(
            r.mean_backlog < 20.0,
            "logical channels should absorb 0.75 load, backlog {}",
            r.mean_backlog
        );
        assert!(r.delivered as f64 >= r.offered as f64 * 0.98);
    }

    #[test]
    fn load_result_accounting() {
        let mut sim = HolSim::new(8, MacMode::Fifo, 9);
        let r = sim.run_with_load(1000, 0.2);
        assert!(r.offered > 0);
        assert!(r.delivered <= r.offered);
    }
}
