//! Outboard network memory.
//!
//! "The core of the adaptor is a memory used for outboard buffering of
//! packets" (§2.1). Allocation is page-granular and every packet starts on
//! a page boundary with all but the last page full (§2.2) — enforced here by
//! allocating whole pages per packet and refusing allocation when the pool
//! is exhausted (the driver sees that as a transient out-of-resources
//! condition, the network sees a dropped packet).

#[cfg(feature = "dma-check")]
use crate::ownership::{DmaEngine, DmaOwnershipViolation, OwnershipJournal};
#[cfg(feature = "dma-check")]
use outboard_sim::Time;
use outboard_sim::{BufPool, Ticket};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifies a packet buffer in one CAB's network memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// One packet buffer.
#[derive(Debug)]
pub struct PacketBuf {
    /// Allocated (maximum) length in bytes.
    pub cap: usize,
    /// Packet contents (`cap` bytes; `valid` of them written so far).
    pub data: Vec<u8>,
    /// Bytes written so far (SDMA progress / full frame length on receive).
    pub valid: usize,
    /// Body checksum saved by the transmit SDMA engine on the first
    /// transfer, reused when the host retransmits with a fresh header
    /// (§4.3: "adds in the checksum of the body of the packet, which it had
    /// saved from when the packet was transferred the first time").
    pub saved_body_csum: Option<u16>,
    pages: usize,
    /// Proof of acquisition when `data` came from a shared buffer pool.
    ticket: Option<Ticket>,
}

/// The network-memory page pool.
#[derive(Debug)]
pub struct NetworkMemory {
    page_size: usize,
    pages_total: usize,
    pages_free: usize,
    pages_hwm: usize,
    allocs: u64,
    alloc_failures: u64,
    frees: u64,
    reserved_pages: usize,
    // BTreeMap, not HashMap: `free_all` drains this map, and a
    // hash-ordered drain would make reset bookkeeping order (and anything
    // downstream of it) vary run to run.
    packets: BTreeMap<PacketId, PacketBuf>,
    next_id: u64,
    /// Optional shared buffer pool behind `PacketBuf::data`; without one,
    /// every allocation is a fresh `Vec` (standalone unit tests).
    pool: Option<Arc<BufPool>>,
    /// DMA ownership journal (§4.4.2's counter handshake as a checked
    /// invariant). Only consulted when the `dma-check` feature is on.
    #[cfg(feature = "dma-check")]
    journal: OwnershipJournal,
}

impl NetworkMemory {
    /// A pool of `total_bytes / page_size` free pages.
    pub fn new(total_bytes: usize, page_size: usize) -> NetworkMemory {
        assert!(page_size > 0 && total_bytes >= page_size);
        NetworkMemory {
            page_size,
            pages_total: total_bytes / page_size,
            pages_free: total_bytes / page_size,
            pages_hwm: 0,
            allocs: 0,
            alloc_failures: 0,
            frees: 0,
            reserved_pages: 0,
            packets: BTreeMap::new(),
            next_id: 1,
            pool: None,
            #[cfg(feature = "dma-check")]
            journal: OwnershipJournal::default(),
        }
    }

    /// Back packet-buffer storage with a shared [`BufPool`] so steady-state
    /// transfers recycle the same slabs instead of allocating per packet.
    pub fn set_pool(&mut self, pool: Arc<BufPool>) {
        self.pool = Some(pool);
    }

    /// Pages currently free.
    pub fn pages_free(&self) -> usize {
        self.pages_free
    }

    /// Total pages in the pool.
    pub fn pages_total(&self) -> usize {
        self.pages_total
    }

    /// High-water mark of pages simultaneously in use.
    pub fn pages_hwm(&self) -> usize {
        self.pages_hwm
    }

    /// Successful allocations.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Allocations refused for want of pages (excludes zero-length requests).
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }

    /// Buffers freed.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Live packet buffers.
    pub fn packet_count(&self) -> usize {
        self.packets.len()
    }

    /// Pages withheld from the allocator (capacity squeeze).
    pub fn reserved_pages(&self) -> usize {
        self.reserved_pages
    }

    /// Withhold `pages` from the allocator, temporarily shrinking the pool.
    /// Already-allocated buffers are untouched; new allocations only see
    /// `pages_free - reserved` pages. Pass 0 to restore full capacity.
    pub fn set_reserved_pages(&mut self, pages: usize) {
        self.reserved_pages = pages.min(self.pages_total);
    }

    /// Free every live packet buffer (board reset drops all outboard
    /// state). Returns the number of buffers released.
    pub fn free_all(&mut self) -> usize {
        let n = self.packets.len();
        for (_, p) in std::mem::take(&mut self.packets) {
            self.pages_free += p.pages;
            self.frees += 1;
            self.recycle(p);
        }
        #[cfg(feature = "dma-check")]
        self.journal.release_all();
        n
    }

    /// Hand a retired buffer's storage back to the pool it came from.
    fn recycle(&self, p: PacketBuf) {
        if let (Some(pool), Some(t)) = (&self.pool, p.ticket) {
            pool.release(p.data, t);
        }
    }

    /// Allocate a page-aligned packet buffer of `len` bytes. Returns `None`
    /// when the pool cannot satisfy the request.
    pub fn alloc(&mut self, len: usize) -> Option<PacketId> {
        if len == 0 {
            return None;
        }
        let pages = len.div_ceil(self.page_size);
        if pages > self.pages_free.saturating_sub(self.reserved_pages) {
            self.alloc_failures += 1;
            return None;
        }
        self.pages_free -= pages;
        self.pages_hwm = self.pages_hwm.max(self.pages_total - self.pages_free);
        self.allocs += 1;
        let id = PacketId(self.next_id);
        self.next_id += 1;
        let (data, ticket) = match &self.pool {
            Some(pool) => {
                let (buf, t) = pool.acquire(len);
                (buf, Some(t))
            }
            None => (vec![0; len], None),
        };
        self.packets.insert(
            id,
            PacketBuf {
                cap: len,
                data,
                valid: 0,
                saved_body_csum: None,
                pages,
                ticket,
            },
        );
        Some(id)
    }

    /// Free a packet buffer (host command; TCP frees transmit buffers when
    /// the data is acknowledged, the receive path after copy-out).
    pub fn free(&mut self, id: PacketId) -> bool {
        if let Some(p) = self.packets.remove(&id) {
            self.pages_free += p.pages;
            self.frees += 1;
            self.recycle(p);
            #[cfg(feature = "dma-check")]
            self.journal.release(id);
            true
        } else {
            false
        }
    }

    /// Look up a packet buffer.
    pub fn get(&self, id: PacketId) -> Option<&PacketBuf> {
        self.packets.get(&id)
    }

    /// Mutable access to a packet buffer (device internals and tests).
    pub fn get_mut(&mut self, id: PacketId) -> Option<&mut PacketBuf> {
        self.packets.get_mut(&id)
    }

    /// Would `engine` starting a transfer on `id` at `now` violate an
    /// ownership invariant? Distinguishes dangling DMA (the id was live
    /// once) from a plain unknown id, which the caller reports as
    /// `UnknownPacket`.
    #[cfg(feature = "dma-check")]
    pub fn journal_check_transfer(
        &mut self,
        id: PacketId,
        engine: DmaEngine,
        now: Time,
    ) -> Result<(), DmaOwnershipViolation> {
        if self.packets.contains_key(&id) {
            return self.journal.check_transfer(id, engine, now);
        }
        let ever = id.0 >= 1 && id.0 < self.next_id;
        match self.journal.check_use_after_free(id, engine, now, ever) {
            Some(v) => Err(v),
            None => Ok(()),
        }
    }

    /// Record a transfer window (`end == None`: wedged engine, held until
    /// board reset).
    #[cfg(feature = "dma-check")]
    pub fn journal_record(&mut self, id: PacketId, engine: DmaEngine, end: Option<Time>) {
        self.journal.record(id, engine, end);
    }

    /// May the host free `id` at `now`? Refusal means an engine window is
    /// still open — the §4.4.2 counter-handshake hazard.
    #[cfg(feature = "dma-check")]
    pub fn journal_check_host_free(
        &mut self,
        id: PacketId,
        now: Time,
    ) -> Result<(), DmaOwnershipViolation> {
        if !self.packets.contains_key(&id) {
            // Freeing an already-gone id is today's benign no-op (`free`
            // returns false); ids are never reused so it cannot dangle.
            return Ok(());
        }
        self.journal.check_host_free(id, now)
    }

    /// Ownership violations recorded so far.
    #[cfg(feature = "dma-check")]
    pub fn journal_violations(&self) -> &[DmaOwnershipViolation] {
        self.journal.violations()
    }

    /// Transfer windows recorded so far (did the checker actually run?).
    #[cfg(feature = "dma-check")]
    pub fn journal_transitions(&self) -> u64 {
        self.journal.transitions()
    }

    /// Read `dst.len()` bytes at `off` from a packet.
    pub fn read(&self, id: PacketId, off: usize, dst: &mut [u8]) -> bool {
        match self.packets.get(&id) {
            Some(p) if off + dst.len() <= p.valid => {
                dst.copy_from_slice(&p.data[off..off + dst.len()]);
                true
            }
            _ => false,
        }
    }
}

impl Drop for NetworkMemory {
    /// Return still-live packet storage to the pool at teardown so the
    /// world-level conservation check (`acquires == releases`) holds even
    /// when a run ends with frames in flight.
    fn drop(&mut self) {
        for (_, p) in std::mem::take(&mut self.packets) {
            self.recycle(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut nm = NetworkMemory::new(64 * 1024, 8 * 1024); // 8 pages
        assert_eq!(nm.pages_free(), 8);
        let a = nm.alloc(32 * 1024 + 40).unwrap(); // 5 pages
        assert_eq!(nm.pages_free(), 3);
        let b = nm.alloc(24 * 1024).unwrap(); // 3 pages
        assert_eq!(nm.pages_free(), 0);
        assert!(nm.alloc(1).is_none(), "pool exhausted");
        assert!(nm.free(a));
        assert_eq!(nm.pages_free(), 5);
        assert!(nm.free(b));
        assert_eq!(nm.pages_free(), 8);
        assert!(!nm.free(a), "double free rejected");
    }

    #[test]
    fn packets_are_page_granular() {
        let mut nm = NetworkMemory::new(64 * 1024, 8 * 1024);
        // A 1-byte packet still consumes a whole page (page-boundary rule).
        let ids: Vec<_> = (0..8).map(|_| nm.alloc(1).unwrap()).collect();
        assert_eq!(nm.pages_free(), 0);
        assert_eq!(ids.len(), 8);
        assert!(nm.alloc(1).is_none());
    }

    #[test]
    fn read_respects_valid_watermark() {
        let mut nm = NetworkMemory::new(64 * 1024, 8 * 1024);
        let id = nm.alloc(100).unwrap();
        {
            let p = nm.get_mut(id).unwrap();
            p.data[..50].copy_from_slice(&[7u8; 50]);
            p.valid = 50;
        }
        let mut buf = [0u8; 10];
        assert!(nm.read(id, 40, &mut buf));
        assert_eq!(buf, [7u8; 10]);
        assert!(!nm.read(id, 45, &mut buf), "beyond valid data");
        assert!(!nm.read(PacketId(999), 0, &mut buf), "unknown packet");
    }

    #[test]
    fn zero_length_alloc_rejected() {
        let mut nm = NetworkMemory::new(64 * 1024, 8 * 1024);
        assert!(nm.alloc(0).is_none());
        assert_eq!(
            nm.alloc_failures(),
            0,
            "zero-length is a caller bug, not pressure"
        );
    }

    #[test]
    fn occupancy_counters_track_pool_pressure() {
        let mut nm = NetworkMemory::new(64 * 1024, 8 * 1024); // 8 pages
        let a = nm.alloc(40 * 1024).unwrap(); // 5 pages
        assert_eq!(nm.pages_hwm(), 5);
        assert!(nm.free(a));
        // HWM sticks after the pool drains.
        assert_eq!(nm.pages_hwm(), 5);
        let b = nm.alloc(8 * 1024 * 7).unwrap(); // 7 pages
        assert_eq!(nm.pages_hwm(), 7);
        assert!(nm.alloc(2 * 8 * 1024).is_none(), "only 1 page left");
        assert_eq!(nm.allocs(), 2);
        assert_eq!(nm.alloc_failures(), 1);
        assert_eq!(nm.frees(), 1);
        assert!(nm.free(b));
        assert_eq!(nm.frees(), 2);
    }
}
