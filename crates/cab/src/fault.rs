//! Adaptor-side fault injection.
//!
//! The links already fail (`netsim::fault`); this module makes the CAB
//! itself a fault domain. A seeded [`FaultInjector`] can fail SDMA/MDMA
//! transfers, wedge an engine (stuck until the driver resets the board),
//! miscompute the outboard checksum, and force network-memory allocation
//! failures. It mirrors the netsim injector's shape: probabilistic knobs
//! plus `force_*_next` queues for hitting exact protocol states in tests.
//!
//! Like the link injector, every draw comes from a private seeded
//! [`Pcg32`], and the RNG is only consulted when a probability is nonzero,
//! so a transparent injector perturbs nothing.

use outboard_sim::obs::Scope;
use outboard_sim::rng::{check_probability, FaultConfigError};
use outboard_sim::Pcg32;
use std::collections::VecDeque;

/// How an injected transfer fault manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferFault {
    /// The transfer fails with a transient, retryable error.
    Error,
    /// The engine wedges: this request and all later ones are stuck until
    /// the driver resets the board.
    Wedge,
}

/// What the injector has done so far, cumulatively.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// SDMA requests presented to the injector.
    pub sdma_offered: u64,
    /// SDMA requests failed transiently.
    pub sdma_failed: u64,
    /// MDMA requests presented to the injector.
    pub mdma_offered: u64,
    /// MDMA requests failed transiently.
    pub mdma_failed: u64,
    /// Engine wedges injected.
    pub wedges: u64,
    /// Outboard checksums miscomputed.
    pub csum_miscomputed: u64,
    /// Network-memory allocations forced to fail.
    pub alloc_failed: u64,
}

/// Seeded, deterministic fault injector for one CAB.
#[derive(Debug)]
pub struct FaultInjector {
    /// Probability an SDMA transfer fails transiently.
    pub sdma_fail_p: f64,
    /// Probability an MDMA transfer fails transiently.
    pub mdma_fail_p: f64,
    /// Probability a transfer wedges its engine instead of completing.
    pub wedge_p: f64,
    /// Probability the outboard checksum engine miscomputes (the inserted
    /// checksum is wrong; the receiver's verification catches it).
    pub csum_error_p: f64,
    /// Probability a network-memory allocation fails even when pages are
    /// free.
    pub alloc_fail_p: f64,
    rng: Pcg32,
    forced_sdma: VecDeque<TransferFault>,
    forced_mdma: VecDeque<TransferFault>,
    forced_csum: u32,
    forced_alloc: u32,
    /// Cumulative injection counts.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// A transparent injector (no faults).
    pub fn none(seed: u64) -> FaultInjector {
        FaultInjector {
            sdma_fail_p: 0.0,
            mdma_fail_p: 0.0,
            wedge_p: 0.0,
            csum_error_p: 0.0,
            alloc_fail_p: 0.0,
            rng: Pcg32::new(seed),
            forced_sdma: VecDeque::new(),
            forced_mdma: VecDeque::new(),
            forced_csum: 0,
            forced_alloc: 0,
            stats: FaultStats::default(),
        }
    }

    /// An injector with the given transfer-failure and allocation-failure
    /// probabilities.
    ///
    /// Rejects probabilities outside `[0, 1]` — a misconfigured knob would
    /// otherwise only trip a `debug_assert!` deep in the RNG, silently
    /// misbehaving in release builds.
    pub fn flaky(
        seed: u64,
        dma_fail_p: f64,
        alloc_fail_p: f64,
    ) -> Result<FaultInjector, FaultConfigError> {
        check_probability("dma_fail_p", dma_fail_p)?;
        check_probability("alloc_fail_p", alloc_fail_p)?;
        let mut f = FaultInjector::none(seed);
        f.sdma_fail_p = dma_fail_p;
        f.mdma_fail_p = dma_fail_p;
        f.alloc_fail_p = alloc_fail_p;
        Ok(f)
    }

    /// Validate every probability knob currently configured on this injector
    /// (the fields are public, so post-construction edits can still smuggle
    /// in a bad value; callers that accept external config should re-check).
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        check_probability("sdma_fail_p", self.sdma_fail_p)?;
        check_probability("mdma_fail_p", self.mdma_fail_p)?;
        check_probability("wedge_p", self.wedge_p)?;
        check_probability("csum_error_p", self.csum_error_p)?;
        check_probability("alloc_fail_p", self.alloc_fail_p)?;
        Ok(())
    }

    /// Force the next `count` SDMA transfers to fail transiently.
    pub fn force_sdma_fail_next(&mut self, count: usize) {
        for _ in 0..count {
            self.forced_sdma.push_back(TransferFault::Error);
        }
    }

    /// Force the next SDMA transfer to wedge the engine.
    pub fn force_sdma_wedge_next(&mut self) {
        self.forced_sdma.push_back(TransferFault::Wedge);
    }

    /// Force the next `count` MDMA transfers to fail transiently.
    pub fn force_mdma_fail_next(&mut self, count: usize) {
        for _ in 0..count {
            self.forced_mdma.push_back(TransferFault::Error);
        }
    }

    /// Force the next MDMA transfer to wedge the engine.
    pub fn force_mdma_wedge_next(&mut self) {
        self.forced_mdma.push_back(TransferFault::Wedge);
    }

    /// Force the next outboard checksum to be miscomputed.
    pub fn force_csum_error_next(&mut self) {
        self.forced_csum += 1;
    }

    /// Force the next `count` network-memory allocations to fail.
    pub fn force_alloc_fail_next(&mut self, count: usize) {
        self.forced_alloc += count as u32;
    }

    /// Draw the fate of one SDMA transfer.
    pub fn sdma_fate(&mut self) -> Option<TransferFault> {
        self.stats.sdma_offered += 1;
        if let Some(forced) = self.forced_sdma.pop_front() {
            return Some(self.count_transfer(forced, true));
        }
        if self.wedge_p > 0.0 && self.rng.chance(self.wedge_p) {
            return Some(self.count_transfer(TransferFault::Wedge, true));
        }
        if self.sdma_fail_p > 0.0 && self.rng.chance(self.sdma_fail_p) {
            return Some(self.count_transfer(TransferFault::Error, true));
        }
        None
    }

    /// Draw the fate of one MDMA transfer.
    pub fn mdma_fate(&mut self) -> Option<TransferFault> {
        self.stats.mdma_offered += 1;
        if let Some(forced) = self.forced_mdma.pop_front() {
            return Some(self.count_transfer(forced, false));
        }
        if self.wedge_p > 0.0 && self.rng.chance(self.wedge_p) {
            return Some(self.count_transfer(TransferFault::Wedge, false));
        }
        if self.mdma_fail_p > 0.0 && self.rng.chance(self.mdma_fail_p) {
            return Some(self.count_transfer(TransferFault::Error, false));
        }
        None
    }

    fn count_transfer(&mut self, fault: TransferFault, sdma: bool) -> TransferFault {
        match fault {
            TransferFault::Error if sdma => self.stats.sdma_failed += 1,
            TransferFault::Error => self.stats.mdma_failed += 1,
            TransferFault::Wedge => self.stats.wedges += 1,
        }
        fault
    }

    /// Should this checksum insertion be miscomputed?
    pub fn csum_miscomputes(&mut self) -> bool {
        if self.forced_csum > 0 {
            self.forced_csum -= 1;
            self.stats.csum_miscomputed += 1;
            return true;
        }
        if self.csum_error_p > 0.0 && self.rng.chance(self.csum_error_p) {
            self.stats.csum_miscomputed += 1;
            return true;
        }
        false
    }

    /// Should this network-memory allocation fail?
    pub fn alloc_fails(&mut self) -> bool {
        if self.forced_alloc > 0 {
            self.forced_alloc -= 1;
            self.stats.alloc_failed += 1;
            return true;
        }
        if self.alloc_fail_p > 0.0 && self.rng.chance(self.alloc_fail_p) {
            self.stats.alloc_failed += 1;
            return true;
        }
        false
    }

    /// Publish cumulative injection counters into a registry scope.
    pub fn publish_metrics(&self, s: &mut Scope<'_>) {
        let f = &self.stats;
        s.counter("faults.sdma_offered", f.sdma_offered);
        s.counter("faults.sdma_failed", f.sdma_failed);
        s.counter("faults.mdma_offered", f.mdma_offered);
        s.counter("faults.mdma_failed", f.mdma_failed);
        s.counter("faults.wedges", f.wedges);
        s.counter("faults.csum_miscomputed", f.csum_miscomputed);
        s.counter("faults.alloc_failed", f.alloc_failed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_injector_injects_nothing() {
        let mut f = FaultInjector::none(1);
        for _ in 0..1000 {
            assert_eq!(f.sdma_fate(), None);
            assert_eq!(f.mdma_fate(), None);
            assert!(!f.csum_miscomputes());
            assert!(!f.alloc_fails());
        }
        assert_eq!(
            f.stats,
            FaultStats {
                sdma_offered: 1000,
                mdma_offered: 1000,
                ..FaultStats::default()
            }
        );
    }

    #[test]
    fn forced_faults_win_then_clear() {
        let mut f = FaultInjector::none(2);
        f.force_sdma_fail_next(2);
        f.force_sdma_wedge_next();
        assert_eq!(f.sdma_fate(), Some(TransferFault::Error));
        assert_eq!(f.sdma_fate(), Some(TransferFault::Error));
        assert_eq!(f.sdma_fate(), Some(TransferFault::Wedge));
        assert_eq!(f.sdma_fate(), None);
        f.force_mdma_fail_next(1);
        assert_eq!(f.mdma_fate(), Some(TransferFault::Error));
        assert_eq!(f.mdma_fate(), None);
        f.force_csum_error_next();
        assert!(f.csum_miscomputes());
        assert!(!f.csum_miscomputes());
        f.force_alloc_fail_next(1);
        assert!(f.alloc_fails());
        assert!(!f.alloc_fails());
        assert_eq!(f.stats.sdma_failed, 2);
        assert_eq!(f.stats.wedges, 1);
        assert_eq!(f.stats.mdma_failed, 1);
        assert_eq!(f.stats.csum_miscomputed, 1);
        assert_eq!(f.stats.alloc_failed, 1);
    }

    #[test]
    fn probabilities_roughly_honored() {
        let mut f = FaultInjector::flaky(3, 0.25, 0.1).unwrap();
        let mut sdma_fails = 0;
        let mut alloc_fails = 0;
        for _ in 0..10_000 {
            if f.sdma_fate() == Some(TransferFault::Error) {
                sdma_fails += 1;
            }
            if f.alloc_fails() {
                alloc_fails += 1;
            }
        }
        let sdma_rate = sdma_fails as f64 / 10_000.0;
        let alloc_rate = alloc_fails as f64 / 10_000.0;
        assert!((0.22..0.28).contains(&sdma_rate), "sdma rate {sdma_rate}");
        assert!(
            (0.08..0.12).contains(&alloc_rate),
            "alloc rate {alloc_rate}"
        );
    }

    #[test]
    fn out_of_range_probabilities_are_rejected() {
        assert_eq!(
            FaultInjector::flaky(1, 1.01, 0.0).unwrap_err().knob,
            "dma_fail_p"
        );
        assert_eq!(
            FaultInjector::flaky(1, 0.0, -0.5).unwrap_err().knob,
            "alloc_fail_p"
        );
        assert!(FaultInjector::flaky(1, f64::INFINITY, 0.0).is_err());
        let mut f = FaultInjector::none(1);
        f.wedge_p = 7.0;
        assert_eq!(f.validate().unwrap_err().knob, "wedge_p");
        f.wedge_p = 0.0;
        assert!(f.validate().is_ok());
    }

    #[test]
    fn deterministic_stream() {
        let run = |seed| {
            let mut f = FaultInjector::flaky(seed, 0.5, 0.5).unwrap();
            (0..64)
                .map(|_| (f.sdma_fate().is_some(), f.alloc_fails()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(10), run(10));
        assert_ne!(run(10), run(11));
    }
}
