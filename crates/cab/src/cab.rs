//! The CAB device model: the register-file interface the driver programs.
//!
//! Host-visible behaviour reproduced from §2.2 of the paper:
//!
//! * **Transmit**: the host pre-allocates a packet buffer, then issues an
//!   SDMA request whose scatter/gather list collects the kernel-built header
//!   and the user data. The checksum is calculated *during the transfer into
//!   network memory* and inserted at a host-specified offset, seeded by the
//!   partial sum the host placed in the checksum field (§4.3). An MDMA
//!   request then moves the finished packet to the media. Only the final
//!   SDMA of a write is flagged to interrupt; TCP transmit buffers stay in
//!   network memory until the host frees them on acknowledgement, and a
//!   retransmission re-DMAs *only a new header*, reusing the saved body
//!   checksum.
//! * **Receive**: the CAB DMAs the first L words into a pre-posted auto-DMA
//!   buffer, computes the body checksum in hardware while the data flows in
//!   from the media, and interrupts the host. Large packets stay outboard
//!   (the stack sees an `M_WCAB` descriptor) until the host issues SDMA
//!   copy-out requests toward the reading process's buffer.

use crate::config::CabConfig;
use crate::engine::EngineTimeline;
use crate::fault::{FaultInjector, TransferFault};
use crate::netmem::{NetworkMemory, PacketId};
use crate::ownership::{DmaEngine, DmaOwnershipViolation};
use bytes::Bytes;
use outboard_host::{MemFault, TaskId, UserMemory};
use outboard_sim::obs::Scope;
use outboard_sim::{BufPool, Dur, Time};
use outboard_wire::checksum::{fold, Accumulator};
use outboard_wire::hippi::HippiAddr;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One scatter/gather element of a transmit SDMA request.
#[derive(Clone, Debug)]
pub enum SgEntry {
    /// Kernel-resident bytes (the protocol headers the host built). Modeled
    /// as inline data; the host pays the same DMA time either way.
    Inline(Bytes),
    /// Pinned user memory (the application's write buffer).
    User {
        /// Owning task.
        task: TaskId,
        /// Word-aligned start address.
        vaddr: u64,
        /// Bytes to gather.
        len: usize,
    },
}

impl SgEntry {
    /// Bytes this entry contributes to the packet.
    pub fn len(&self) -> usize {
        match self {
            SgEntry::Inline(b) => b.len(),
            SgEntry::User { len, .. } => *len,
        }
    }

    /// True for a zero-length entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Where the hardware inserts the transport checksum (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChecksumSpec {
    /// Byte offset of the 16-bit checksum field within the packet. The host
    /// has already written the *seed* (partial sum of the headers it owns)
    /// there.
    pub csum_offset: usize,
    /// Number of leading 32-bit words the checksum engine skips.
    pub skip_words: usize,
}

/// A transmit SDMA request (host → network memory).
#[derive(Clone, Debug)]
pub struct SdmaTx {
    /// Destination packet buffer (pre-allocated by the host).
    pub packet: PacketId,
    /// Scatter/gather list, in packet order.
    pub sg: Vec<SgEntry>,
    /// Outboard checksum insertion, when the transport uses it.
    pub csum: Option<ChecksumSpec>,
    /// Retransmission: the scatter/gather list carries only a fresh header;
    /// the engine reuses the body checksum saved on the first transfer.
    pub reuse_body_csum: bool,
    /// Raise a host interrupt on completion (only the last SDMA of a write
    /// sets this, §2.2).
    pub interrupt_on_complete: bool,
    /// Host cookie returned in the completion event.
    pub token: u64,
}

/// Destination of a receive-side SDMA copy-out.
#[derive(Clone, Copy, Debug)]
pub enum SdmaDst {
    /// Straight into the reading process's pinned buffer (single-copy path).
    User {
        /// Owning task.
        task: TaskId,
        /// Word-aligned destination address.
        vaddr: u64,
    },
    /// Into kernel memory (the `M_WCAB` → regular-mbuf conversion path for
    /// in-kernel applications, §5); the bytes come back in the completion.
    Kernel,
}

/// A receive SDMA request (network memory → host).
#[derive(Clone, Copy, Debug)]
pub struct SdmaRx {
    /// Source packet in network memory.
    pub packet: PacketId,
    /// Byte offset within the packet to copy from.
    pub src_off: usize,
    /// Bytes to copy out.
    pub len: usize,
    /// Where the bytes go.
    pub dst: SdmaDst,
    /// Free the packet buffer after the copy (last copy-out of a packet).
    pub free_packet: bool,
    /// Raise a host interrupt when the copy finishes (§2.2: flagged on the last SDMA of a read).
    pub interrupt_on_complete: bool,
    /// Host cookie returned in the completion event.
    pub token: u64,
}

/// Completion/side-effect events the device hands back to the simulation
/// harness, each stamped with the absolute time it occurs.
#[derive(Clone, Debug)]
pub enum CabEvent {
    /// An SDMA request finished. `data` carries copy-out bytes for
    /// [`SdmaDst::Kernel`] requests.
    SdmaDone {
        /// Completion time on the engine timeline.
        at: Time,
        /// The request's host cookie.
        token: u64,
        /// Whether the host is interrupted.
        interrupt: bool,
        /// Copy-out bytes for kernel-destination requests.
        data: Option<Bytes>,
    },
    /// A frame left on the media.
    FrameOut {
        /// Completion time on the MDMA timeline.
        at: Time,
        /// Destination fabric address.
        dst: HippiAddr,
        /// Logical channel the packet was queued on.
        channel: u16,
        /// The serialized frame contents.
        frame: Bytes,
    },
    /// A frame arrived, its checksum is computed, and the first L words are
    /// in host memory; the host is being interrupted. `packet` is `None`
    /// when the whole frame fit in the auto-DMA buffer (small-packet path).
    RxReady {
        /// When the auto-DMA completes and the interrupt is raised.
        at: Time,
        /// Outboard buffer holding the frame (None when it fit in the auto-DMA buffer).
        packet: Option<PacketId>,
        /// The first L words, delivered with the interrupt.
        autodma: Bytes,
        /// Hardware ones-complement sum over the transport area.
        hw_csum: u16,
        /// Total frame length on the wire.
        frame_len: usize,
    },
    /// A frame was dropped for want of network memory.
    RxDropped {
        /// When the drop happened.
        at: Time,
        /// Length of the lost frame.
        frame_len: usize,
    },
}

impl CabEvent {
    /// The event's timestamp.
    pub fn at(&self) -> Time {
        match self {
            CabEvent::SdmaDone { at, .. }
            | CabEvent::FrameOut { at, .. }
            | CabEvent::RxReady { at, .. }
            | CabEvent::RxDropped { at, .. } => *at,
        }
    }
}

/// Errors the device reports to the driver synchronously.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CabError {
    /// The request names a packet that does not exist.
    UnknownPacket(PacketId),
    /// Request violates a device rule (lengths, ordering, word alignment).
    BadRequest(&'static str),
    /// A user-memory access faulted (unpinned/bad address).
    MemFault(MemFault),
    /// A transfer failed transiently (bus parity, microcode hiccup); the
    /// driver may retry the request.
    DmaError(&'static str),
    /// The named engine is wedged: it accepts nothing further until the
    /// driver resets the board.
    EngineWedged(&'static str),
    /// A DMA ownership invariant was violated (overlapping engines,
    /// use-after-free, free-while-DMA). Only constructed when the
    /// `dma-check` feature is on; without it the same access proceeds
    /// silently, exactly as the real hardware would corrupt silently.
    Ownership(DmaOwnershipViolation),
}

impl CabError {
    /// Is this a transient condition a bounded retry can clear (as opposed
    /// to a malformed request or a wedged engine)?
    pub fn is_transient(&self) -> bool {
        matches!(self, CabError::DmaError(_))
    }
}

impl std::fmt::Display for CabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CabError::UnknownPacket(id) => write!(f, "unknown packet {id:?}"),
            CabError::BadRequest(s) => write!(f, "bad request: {s}"),
            CabError::MemFault(m) => write!(f, "{m}"),
            CabError::DmaError(s) => write!(f, "transient dma error: {s}"),
            CabError::EngineWedged(e) => write!(f, "{e} engine wedged"),
            CabError::Ownership(v) => write!(f, "dma ownership violation: {v}"),
        }
    }
}

impl std::error::Error for CabError {}

/// Device statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CabStats {
    /// Transmit SDMA requests completed.
    pub sdma_tx_requests: u64,
    /// Receive SDMA (copy-out) requests completed.
    pub sdma_rx_requests: u64,
    /// Frames put on the media.
    pub frames_tx: u64,
    /// Frames received from the media.
    pub frames_rx: u64,
    /// Bytes transmitted.
    pub bytes_tx: u64,
    /// Bytes received.
    pub bytes_rx: u64,
    /// Received frames dropped: no network memory.
    pub rx_dropped_nomem: u64,
    /// Retransmissions that reused a saved body checksum.
    pub body_csum_reuses: u64,
    /// Small receives satisfied entirely by the auto-DMA buffer.
    pub autodma_only_rx: u64,
    /// Received frames dropped because an engine was wedged.
    pub rx_dropped_wedged: u64,
    /// Board resets performed by the driver's watchdog.
    pub resets: u64,
}

/// One CAB adaptor.
#[derive(Debug)]
pub struct Cab {
    cfg: CabConfig,
    /// This adaptor's address in the HIPPI fabric.
    pub addr: HippiAddr,
    netmem: NetworkMemory,
    sdma: EngineTimeline,
    mdma_tx: EngineTimeline,
    mdma_rx: EngineTimeline,
    /// Device statistics.
    pub stats: CabStats,
    /// Frames transmitted per MAC logical channel (queue-depth proxy for the
    /// HOL analysis in §6: which channels the traffic actually spread over).
    pub per_channel_tx: BTreeMap<u16, u64>,
    /// Adaptor-side fault injection (transparent by default).
    pub faults: FaultInjector,
    /// Shared buffer pool for staging copies and outbound frames.
    pool: Option<Arc<BufPool>>,
}

impl Cab {
    /// A CAB at fabric address `addr`.
    pub fn new(addr: HippiAddr, cfg: CabConfig) -> Cab {
        let netmem = NetworkMemory::new(cfg.net_mem_bytes, cfg.page_size);
        Cab {
            cfg,
            addr,
            netmem,
            sdma: EngineTimeline::new(),
            mdma_tx: EngineTimeline::new(),
            mdma_rx: EngineTimeline::new(),
            stats: CabStats::default(),
            per_channel_tx: BTreeMap::new(),
            faults: FaultInjector::none(u64::from(addr)),
            pool: None,
        }
    }

    /// Recycle packet-buffer, staging, and frame storage through a shared
    /// [`BufPool`] so steady-state transfers stop allocating per frame.
    pub fn set_pool(&mut self, pool: Arc<BufPool>) {
        self.netmem.set_pool(Arc::clone(&pool));
        self.pool = Some(pool);
    }

    /// The device configuration.
    pub fn config(&self) -> &CabConfig {
        &self.cfg
    }

    /// Inspect the network memory (tests and leak checks).
    pub fn netmem(&self) -> &NetworkMemory {
        &self.netmem
    }

    /// Host command: allocate a packet buffer for a fully-formed packet.
    pub fn alloc_packet(&mut self, len: usize) -> Option<PacketId> {
        if len > 0 && self.faults.alloc_fails() {
            return None;
        }
        self.netmem.alloc(len)
    }

    /// Board reset (the driver's watchdog response to a wedged engine):
    /// clear all engine wedges and drop every outboard buffer. Returns the
    /// number of packet buffers released. Unacknowledged transmit data
    /// survives on the host — the retention rule the paper prescribes — so
    /// the driver rebuilds transmit from the socket send queues afterwards.
    pub fn reset(&mut self) -> usize {
        self.sdma.clear_wedge();
        self.mdma_tx.clear_wedge();
        self.mdma_rx.clear_wedge();
        self.stats.resets += 1;
        self.netmem.free_all()
    }

    /// Is any DMA engine wedged (watchdog / probe check)?
    pub fn any_engine_wedged(&self) -> bool {
        self.sdma.is_wedged() || self.mdma_tx.is_wedged() || self.mdma_rx.is_wedged()
    }

    /// Temporarily withhold `reserved_pages` of network memory from the
    /// allocator (capacity squeeze). Pass 0 to restore full capacity.
    pub fn squeeze_netmem(&mut self, reserved_pages: usize) {
        self.netmem.set_reserved_pages(reserved_pages);
    }

    /// Host command: free a packet buffer (on TCP acknowledgement or after
    /// the last receive copy-out). `now` is when the host issues the
    /// command; with `dma-check` on, a free inside an engine's open
    /// transfer window is refused and recorded — the hazard the paper's
    /// DMA-counter handshake (§4.4.2) exists to prevent.
    pub fn free_packet(&mut self, id: PacketId, now: Time) -> bool {
        #[cfg(not(feature = "dma-check"))]
        let _ = now;
        #[cfg(feature = "dma-check")]
        if self.netmem.journal_check_host_free(id, now).is_err() {
            return false;
        }
        self.netmem.free(id)
    }

    /// Ownership violations recorded by the `dma-check` journal.
    #[cfg(feature = "dma-check")]
    pub fn ownership_violations(&self) -> &[DmaOwnershipViolation] {
        self.netmem.journal_violations()
    }

    /// Transfer windows the `dma-check` journal has recorded (lets tests
    /// assert the checker actually observed traffic).
    #[cfg(feature = "dma-check")]
    pub fn ownership_transitions(&self) -> u64 {
        self.netmem.journal_transitions()
    }

    /// `UnknownPacket`, upgraded to a use-after-free ownership violation
    /// when the id was live once and `dma-check` is on (ids are never
    /// reused, so a dangling DMA is distinguishable from a typo).
    fn missing_packet(&mut self, id: PacketId, _engine: DmaEngine, _now: Time) -> CabError {
        #[cfg(feature = "dma-check")]
        if let Err(v) = self.netmem.journal_check_transfer(id, _engine, _now) {
            return CabError::Ownership(v);
        }
        CabError::UnknownPacket(id)
    }

    /// Engine-time bookkeeping for a host-bus transfer.
    fn sdma_cost_extra(&self, sg_entries: usize, misaligned_edges: usize) -> Dur {
        Dur::from_micros_f64(
            self.cfg.sdma_setup_us
                + self.cfg.sdma_per_sg_us * sg_entries as f64
                + self.cfg.sdma_misalign_us * misaligned_edges as f64,
        )
    }

    fn count_misaligned(&self, sg: &[SgEntry]) -> usize {
        sg.iter()
            .filter_map(|e| match e {
                SgEntry::User { vaddr, len, .. } => Some((*vaddr, *len)),
                SgEntry::Inline(_) => None,
            })
            .map(|(vaddr, len)| {
                let a = self.cfg.burst_align as u64;
                usize::from(vaddr % a != 0) + usize::from(!(vaddr + len as u64).is_multiple_of(a))
            })
            .sum()
    }

    /// Transmit SDMA: gather header + user data into network memory,
    /// computing and inserting the transport checksum on the fly (§4.3).
    pub fn sdma_tx(
        &mut self,
        req: SdmaTx,
        now: Time,
        mem: &dyn UserMemory,
    ) -> Result<CabEvent, CabError> {
        if self.sdma.is_wedged() {
            return Err(CabError::EngineWedged("sdma"));
        }
        // Word alignment is a hard device rule (§4.5): the single-copy path
        // may only be used for word-aligned user buffers. (Lengths may be
        // ragged — the engine pads the final burst — but start addresses
        // cannot.)
        for e in &req.sg {
            if let SgEntry::User { vaddr, .. } = e {
                if vaddr % 4 != 0 {
                    return Err(CabError::BadRequest("user sg entry not word aligned"));
                }
            }
        }
        let total: usize = req.sg.iter().map(|e| e.len()).sum();
        let (pkt_cap, pkt_valid, pkt_saved_csum) = match self.netmem.get(req.packet) {
            Some(p) => (p.cap, p.valid, p.saved_body_csum),
            None => return Err(self.missing_packet(req.packet, DmaEngine::Sdma, now)),
        };

        if req.reuse_body_csum {
            let spec = req
                .csum
                .ok_or(CabError::BadRequest("retransmit without checksum spec"))?;
            if total > spec.skip_words * 4 {
                return Err(CabError::BadRequest(
                    "retransmit sg must cover only the skipped header words",
                ));
            }
            if pkt_saved_csum.is_none() {
                return Err(CabError::BadRequest("no saved body checksum to reuse"));
            }
        } else if total != pkt_cap {
            // Packets are fully formed when transferred to the CAB (§2.2).
            return Err(CabError::BadRequest(
                "sg total must fill the packet buffer exactly",
            ));
        }
        if let Some(spec) = req.csum {
            // Validate the spec before any bytes move so an error never
            // leaves a half-written packet behind.
            let new_valid = if req.reuse_body_csum {
                pkt_valid
            } else {
                total
            };
            if spec.csum_offset + 2 > new_valid || spec.skip_words * 4 > new_valid {
                return Err(CabError::BadRequest("checksum spec outside packet"));
            }
        }

        // Would this transfer overlap another engine's claim on the buffer?
        #[cfg(feature = "dma-check")]
        self.netmem
            .journal_check_transfer(req.packet, DmaEngine::Sdma, now)
            .map_err(CabError::Ownership)?;

        // Injected fault draw: after validation (malformed requests never
        // reach the engine), before any state is committed.
        match self.faults.sdma_fate() {
            Some(TransferFault::Wedge) => {
                self.sdma.wedge();
                // The engine stalled mid-gather: it holds the buffer until
                // board reset (open-ended window).
                #[cfg(feature = "dma-check")]
                self.netmem
                    .journal_record(req.packet, DmaEngine::Sdma, None);
                return Err(CabError::EngineWedged("sdma"));
            }
            Some(TransferFault::Error) => {
                return Err(CabError::DmaError("sdma transfer fault"));
            }
            None => {}
        }

        // Gather the bytes into a (recycled) staging buffer.
        let (mut staged, staged_ticket) = match &self.pool {
            Some(p) => {
                let (b, t) = p.acquire(total);
                (b, Some(t))
            }
            None => (vec![0u8; total], None),
        };
        let mut off = 0usize;
        for e in &req.sg {
            match e {
                SgEntry::Inline(b) => {
                    staged[off..off + b.len()].copy_from_slice(b);
                    off += b.len();
                }
                SgEntry::User { task, vaddr, len } => {
                    if let Err(f) = mem.read_user(*task, *vaddr, &mut staged[off..off + len]) {
                        if let (Some(p), Some(t)) = (&self.pool, staged_ticket) {
                            p.release(staged, t);
                        }
                        return Err(CabError::MemFault(f));
                    }
                    off += len;
                }
            }
        }

        let misaligned = self.count_misaligned(&req.sg);
        let extra = self.sdma_cost_extra(req.sg.len(), misaligned);
        let done = self.sdma.run(now, extra, total, self.cfg.sdma_bps());

        // The gather occupies the buffer for [now, done); the checksum
        // engine computes during the same window (§4.3's sanctioned
        // concurrency).
        #[cfg(feature = "dma-check")]
        {
            self.netmem
                .journal_record(req.packet, DmaEngine::Sdma, Some(done));
            if req.csum.is_some() {
                self.netmem
                    .journal_record(req.packet, DmaEngine::ChecksumEngine, Some(done));
            }
        }

        // Commit to network memory and run the checksum engine.
        let Some(pkt) = self.netmem.get_mut(req.packet) else {
            if let (Some(p), Some(t)) = (&self.pool, staged_ticket) {
                p.release(staged, t);
            }
            return Err(CabError::UnknownPacket(req.packet));
        };
        pkt.data[..total].copy_from_slice(&staged);
        if let (Some(p), Some(t)) = (&self.pool, staged_ticket) {
            p.release(staged, t);
        }
        if !req.reuse_body_csum {
            pkt.valid = total;
        }
        if let Some(spec) = req.csum {
            let skip = spec.skip_words * 4;
            let body_sum = if req.reuse_body_csum {
                self.stats.body_csum_reuses += 1;
                match pkt.saved_body_csum {
                    Some(s) => s,
                    None => return Err(CabError::BadRequest("no saved body checksum to reuse")),
                }
            } else {
                let mut acc = Accumulator::new();
                acc.add_bytes(&pkt.data[skip..pkt.valid]);
                let s = acc.partial();
                pkt.saved_body_csum = Some(s);
                s
            };
            let seed =
                u16::from_be_bytes([pkt.data[spec.csum_offset], pkt.data[spec.csum_offset + 1]]);
            let mut final_csum = !fold(seed as u32 + body_sum as u32);
            // An injected checksum-engine fault inserts a wrong sum; the
            // receiver's verification catches it and the transport recovers
            // by retransmission.
            if self.faults.csum_miscomputes() {
                final_csum ^= 0x5555;
            }
            pkt.data[spec.csum_offset..spec.csum_offset + 2]
                .copy_from_slice(&final_csum.to_be_bytes());
        }

        self.stats.sdma_tx_requests += 1;
        Ok(CabEvent::SdmaDone {
            at: done,
            token: req.token,
            interrupt: req.interrupt_on_complete,
            data: None,
        })
    }

    /// Receive SDMA: copy packet bytes out of network memory toward the
    /// reading process (or kernel memory for the conversion path).
    pub fn sdma_rx(
        &mut self,
        req: SdmaRx,
        now: Time,
        mem: &mut dyn UserMemory,
    ) -> Result<CabEvent, CabError> {
        if self.sdma.is_wedged() {
            return Err(CabError::EngineWedged("sdma"));
        }
        if let SdmaDst::User { vaddr, .. } = req.dst {
            if vaddr % 4 != 0 {
                return Err(CabError::BadRequest("user destination not word aligned"));
            }
        }
        let pkt_valid = match self.netmem.get(req.packet) {
            Some(p) => p.valid,
            None => return Err(self.missing_packet(req.packet, DmaEngine::Sdma, now)),
        };
        if req.src_off + req.len > pkt_valid {
            return Err(CabError::BadRequest("copy-out beyond valid packet data"));
        }
        #[cfg(feature = "dma-check")]
        self.netmem
            .journal_check_transfer(req.packet, DmaEngine::Sdma, now)
            .map_err(CabError::Ownership)?;
        match self.faults.sdma_fate() {
            Some(TransferFault::Wedge) => {
                self.sdma.wedge();
                // Stalled mid-copy-out: the buffer stays claimed until
                // reset. The driver's PIO fallback may still *read* it
                // (network memory is host-addressable) but must not free
                // it out from under the engine.
                #[cfg(feature = "dma-check")]
                self.netmem
                    .journal_record(req.packet, DmaEngine::Sdma, None);
                return Err(CabError::EngineWedged("sdma"));
            }
            Some(TransferFault::Error) => {
                return Err(CabError::DmaError("sdma copy-out fault"));
            }
            None => {}
        }
        let Some(pkt) = self.netmem.get(req.packet) else {
            return Err(CabError::UnknownPacket(req.packet));
        };
        let (mut buf, buf_ticket) = match &self.pool {
            Some(p) => {
                let (b, t) = p.acquire(req.len);
                (b, Some(t))
            }
            None => (vec![0u8; req.len], None),
        };
        buf.copy_from_slice(&pkt.data[req.src_off..req.src_off + req.len]);

        let misaligned = match req.dst {
            SdmaDst::User { vaddr, .. } => {
                let a = self.cfg.burst_align as u64;
                usize::from(vaddr % a != 0)
                    + usize::from(!(vaddr + req.len as u64).is_multiple_of(a))
            }
            SdmaDst::Kernel => 0,
        };
        let extra = self.sdma_cost_extra(1, misaligned);
        let done = self.sdma.run(now, extra, req.len, self.cfg.sdma_bps());

        #[cfg(feature = "dma-check")]
        self.netmem
            .journal_record(req.packet, DmaEngine::Sdma, Some(done));

        let data = match req.dst {
            SdmaDst::User { task, vaddr } => {
                let wrote = mem.write_user(task, vaddr, &buf);
                if let (Some(p), Some(t)) = (&self.pool, buf_ticket) {
                    p.release(buf, t);
                }
                wrote.map_err(CabError::MemFault)?;
                None
            }
            SdmaDst::Kernel => Some(match (&self.pool, buf_ticket) {
                (Some(p), Some(t)) => p.freeze(buf, t),
                _ => Bytes::from(buf),
            }),
        };
        if req.free_packet {
            self.netmem.free(req.packet);
        }
        self.stats.sdma_rx_requests += 1;
        Ok(CabEvent::SdmaDone {
            at: done,
            token: req.token,
            interrupt: req.interrupt_on_complete,
            data,
        })
    }

    /// Transmit MDMA: put a fully-formed packet on the media. The packet
    /// buffer is kept unless `free_after` (TCP keeps it for retransmission
    /// until acknowledged; UDP frees on completion — no interrupt needed in
    /// either case, §2.2).
    pub fn mdma_tx(
        &mut self,
        packet: PacketId,
        dst: HippiAddr,
        channel: u16,
        now: Time,
        free_after: bool,
    ) -> Result<CabEvent, CabError> {
        if self.mdma_tx.is_wedged() {
            return Err(CabError::EngineWedged("mdma_tx"));
        }
        let frame = match self.netmem.get(packet) {
            Some(pkt) => {
                if pkt.valid == 0 {
                    return Err(CabError::BadRequest("mdma of empty packet"));
                }
                match &self.pool {
                    // Pooled frame: if a fault path below abandons it, the
                    // drop hook still returns the storage.
                    Some(p) => p.copy_from_slice(&pkt.data[..pkt.valid]),
                    None => Bytes::copy_from_slice(&pkt.data[..pkt.valid]),
                }
            }
            None => return Err(self.missing_packet(packet, DmaEngine::MdmaTx, now)),
        };
        // The three-concurrent-engine hazard (§3): outflow must not start
        // while another engine still claims the buffer.
        #[cfg(feature = "dma-check")]
        self.netmem
            .journal_check_transfer(packet, DmaEngine::MdmaTx, now)
            .map_err(CabError::Ownership)?;
        match self.faults.mdma_fate() {
            Some(TransferFault::Wedge) => {
                self.mdma_tx.wedge();
                // Stalled mid-outflow: the buffer is seized until reset.
                #[cfg(feature = "dma-check")]
                self.netmem.journal_record(packet, DmaEngine::MdmaTx, None);
                return Err(CabError::EngineWedged("mdma_tx"));
            }
            Some(TransferFault::Error) => {
                return Err(CabError::DmaError("mdma transfer fault"));
            }
            None => {}
        }
        let done = self.mdma_tx.run(
            now,
            Dur::from_micros_f64(self.cfg.mdma_setup_us),
            frame.len(),
            self.cfg.media_bps(),
        );
        #[cfg(feature = "dma-check")]
        self.netmem
            .journal_record(packet, DmaEngine::MdmaTx, Some(done));
        if free_after {
            self.netmem.free(packet);
        }
        self.stats.frames_tx += 1;
        self.stats.bytes_tx += frame.len() as u64;
        *self.per_channel_tx.entry(channel).or_insert(0) += 1;
        Ok(CabEvent::FrameOut {
            at: done,
            dst,
            channel,
            frame,
        })
    }

    /// A frame arrives from the media: allocate outboard space, compute the
    /// receive checksum in hardware, auto-DMA the first L words to the host
    /// and raise the receive interrupt (§2.2).
    pub fn receive_frame(&mut self, frame: Bytes, now: Time) -> CabEvent {
        let len = frame.len();
        // A wedged engine cannot move the frame off the media; the frame is
        // lost and the transport recovers by retransmission.
        if self.sdma.is_wedged() || self.mdma_rx.is_wedged() {
            self.stats.rx_dropped_wedged += 1;
            return CabEvent::RxDropped {
                at: now,
                frame_len: len,
            };
        }
        let id = if self.faults.alloc_fails() {
            None
        } else {
            self.netmem.alloc(len)
        };
        let Some(id) = id else {
            self.stats.rx_dropped_nomem += 1;
            return CabEvent::RxDropped {
                at: now,
                frame_len: len,
            };
        };
        // Media-side engine occupancy (the frame flows through MDMA-rx into
        // network memory; the link already serialized it, so this mostly
        // matters for back-to-back arrival contention).
        let mdma_done = self.mdma_rx.run(
            now,
            Dur::from_micros_f64(self.cfg.mdma_setup_us),
            0, // serialization paid on the link; setup only
            self.cfg.media_bps(),
        );
        if let Some(pkt) = self.netmem.get_mut(id) {
            pkt.data[..len].copy_from_slice(&frame);
            pkt.valid = len;
        } else {
            // Freshly allocated above; only reachable if the board is being
            // reset underneath us — treat the frame as lost.
            self.stats.rx_dropped_nomem += 1;
            return CabEvent::RxDropped {
                at: now,
                frame_len: len,
            };
        }
        // Hardware receive checksum from the fixed word offset (§4.3).
        let skip = (self.cfg.rx_csum_skip_words * 4).min(len);
        let mut acc = Accumulator::new();
        acc.add_bytes(&frame[skip..]);
        let hw_csum = acc.partial();

        // Auto-DMA the first L words into host memory (charged to the
        // host-bus engine), then interrupt.
        let auto_len = self.cfg.autodma_bytes().min(len);
        let autodma = frame.slice(..auto_len);
        let done = self.sdma.run(
            mdma_done,
            Dur::from_micros_f64(2.0),
            auto_len,
            self.cfg.sdma_bps(),
        );

        // Inflow claims the fresh buffer for [now, mdma_done) with the
        // checksum engine computing alongside (§4.3); the auto-DMA to the
        // host takes [mdma_done, done) — strictly sequential windows.
        #[cfg(feature = "dma-check")]
        {
            self.netmem
                .journal_record(id, DmaEngine::MdmaRx, Some(mdma_done));
            self.netmem
                .journal_record(id, DmaEngine::ChecksumEngine, Some(mdma_done));
            self.netmem.journal_record(id, DmaEngine::Sdma, Some(done));
        }

        self.stats.frames_rx += 1;
        self.stats.bytes_rx += len as u64;

        let packet = if len <= self.cfg.autodma_bytes() {
            // Whole packet delivered with the interrupt: nothing stays
            // outboard (the stack will build a regular mbuf, §4.2).
            self.netmem.free(id);
            self.stats.autodma_only_rx += 1;
            None
        } else {
            Some(id)
        };
        CabEvent::RxReady {
            at: done,
            packet,
            autodma,
            hw_csum,
            frame_len: len,
        }
    }

    /// Direct read of packet bytes (tests and driver header inspection).
    pub fn read_packet(&self, id: PacketId, off: usize, dst: &mut [u8]) -> bool {
        self.netmem.read(id, off, dst)
    }

    /// Is this outboard buffer still live? Packet ids are never reused, so
    /// `false` means the buffer was freed (e.g. by a board reset) and any
    /// descriptor still naming it is stale. The driver uses this to discard
    /// receive interrupts that crossed a reset in flight.
    pub fn packet_exists(&self, id: PacketId) -> bool {
        self.netmem.get(id).is_some()
    }

    /// SDMA engine busy time so far (for adaptor-utilization reporting).
    pub fn sdma_busy(&self) -> Dur {
        self.sdma.total_busy()
    }

    /// When the SDMA engine's current backlog drains.
    pub fn sdma_busy_until(&self) -> Time {
        self.sdma.busy_until()
    }

    /// Total busy time across all three DMA engines (SDMA + both MDMA
    /// directions) — the timeline sampler's "engine busy" counter.
    pub fn engines_busy(&self) -> Dur {
        self.sdma.total_busy() + self.mdma_tx.total_busy() + self.mdma_rx.total_busy()
    }

    /// Publish the adaptor's metrics — engine busy fractions (the paper's
    /// §7.1 utilization accounting), network-memory occupancy, and frame
    /// counters — into a registry scope.
    pub fn publish_metrics(&self, s: &mut Scope<'_>) {
        s.busy_frac("sdma.busy_frac", self.sdma.tracker());
        s.counter("sdma.requests", self.sdma.requests);
        s.counter("sdma.bytes", self.sdma.bytes);
        s.busy_frac("mdma_tx.busy_frac", self.mdma_tx.tracker());
        s.counter("mdma_tx.requests", self.mdma_tx.requests);
        s.busy_frac("mdma_rx.busy_frac", self.mdma_rx.tracker());
        s.counter("mdma_rx.requests", self.mdma_rx.requests);

        let nm = &self.netmem;
        s.gauge(
            "netmem.pages_used",
            (nm.pages_total() - nm.pages_free()) as i64,
            nm.pages_hwm() as i64,
        );
        s.counter("netmem.pages_total", nm.pages_total() as u64);
        s.counter("netmem.allocs", nm.allocs());
        s.counter("netmem.alloc_failures", nm.alloc_failures());
        s.counter("netmem.frees", nm.frees());
        s.gauge(
            "netmem.pages_reserved",
            nm.reserved_pages() as i64,
            nm.reserved_pages() as i64,
        );

        s.counter("frames_tx", self.stats.frames_tx);
        s.counter("frames_rx", self.stats.frames_rx);
        s.counter("bytes_tx", self.stats.bytes_tx);
        s.counter("bytes_rx", self.stats.bytes_rx);
        s.counter("sdma_tx_requests", self.stats.sdma_tx_requests);
        s.counter("sdma_rx_requests", self.stats.sdma_rx_requests);
        s.counter("rx_dropped_nomem", self.stats.rx_dropped_nomem);
        s.counter("body_csum_reuses", self.stats.body_csum_reuses);
        s.counter("autodma_only_rx", self.stats.autodma_only_rx);
        s.counter("rx_dropped_wedged", self.stats.rx_dropped_wedged);
        s.counter("resets", self.stats.resets);
        self.faults.publish_metrics(s);
        for (ch, n) in &self.per_channel_tx {
            s.counter(&format!("channel.{ch}.frames_tx"), *n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outboard_host::HostMem;
    use outboard_wire::checksum::{pseudo_header_sum, verify_transport};

    const HDR: usize = 80; // pretend framing+ip+tcp header, word aligned
    const SKIP_WORDS: usize = HDR / 4;
    const CSUM_OFF: usize = 76; // 16-bit field near the end of the header

    fn setup() -> (Cab, HostMem, TaskId) {
        let cab = Cab::new(1, CabConfig::default());
        let mut hm = HostMem::new();
        let task = TaskId(1);
        hm.create_region(task, 0x10000, 256 * 1024);
        let region = hm.region_mut(task).unwrap();
        for (i, b) in region.iter_mut().enumerate() {
            *b = (i * 31 + 7) as u8;
        }
        (cab, hm, task)
    }

    fn header_with_seed(seed: u16) -> Vec<u8> {
        let mut h = vec![0u8; HDR];
        for (i, b) in h.iter_mut().enumerate() {
            *b = i as u8;
        }
        h[CSUM_OFF..CSUM_OFF + 2].copy_from_slice(&seed.to_be_bytes());
        h
    }

    fn tx_packet(
        cab: &mut Cab,
        hm: &HostMem,
        task: TaskId,
        seed: u16,
        data_vaddr: u64,
        data_len: usize,
    ) -> (PacketId, CabEvent) {
        let id = cab.alloc_packet(HDR + data_len).unwrap();
        let ev = cab
            .sdma_tx(
                SdmaTx {
                    packet: id,
                    sg: vec![
                        SgEntry::Inline(Bytes::from(header_with_seed(seed))),
                        SgEntry::User {
                            task,
                            vaddr: data_vaddr,
                            len: data_len,
                        },
                    ],
                    csum: Some(ChecksumSpec {
                        csum_offset: CSUM_OFF,
                        skip_words: SKIP_WORDS,
                    }),
                    reuse_body_csum: false,
                    interrupt_on_complete: true,
                    token: 7,
                },
                Time::ZERO,
                hm,
            )
            .unwrap();
        (id, ev)
    }

    /// Software reference for what the hardware should produce.
    fn expected_csum(seed: u16, body: &[u8]) -> u16 {
        let mut acc = Accumulator::from_partial(seed);
        acc.add_bytes(body);
        !acc.partial()
    }

    #[test]
    fn tx_checksum_inserted_during_sdma() {
        let (mut cab, hm, task) = setup();
        let (id, ev) = tx_packet(&mut cab, &hm, task, 0xABCD, 0x10000, 4096);
        match ev {
            CabEvent::SdmaDone {
                interrupt, token, ..
            } => {
                assert!(interrupt);
                assert_eq!(token, 7);
            }
            other => panic!("{other:?}"),
        }
        // The packet in network memory carries the folded seed+body csum.
        let mut body = vec![0u8; 4096];
        hm.read_user(task, 0x10000, &mut body).unwrap();
        let mut got = [0u8; 2];
        assert!(cab.read_packet(id, CSUM_OFF, &mut got));
        assert_eq!(u16::from_be_bytes(got), expected_csum(0xABCD, &body));
        // And the user data made it outboard verbatim.
        let mut out = vec![0u8; 4096];
        assert!(cab.read_packet(id, HDR, &mut out));
        assert_eq!(out, body);
    }

    #[test]
    fn retransmit_reuses_saved_body_checksum() {
        let (mut cab, hm, task) = setup();
        let (id, _) = tx_packet(&mut cab, &hm, task, 0x1111, 0x10000, 4096);
        // Retransmit with a fresh header (different seed, e.g. new ack
        // field): only the header goes over the bus.
        let ev = cab
            .sdma_tx(
                SdmaTx {
                    packet: id,
                    sg: vec![SgEntry::Inline(Bytes::from(header_with_seed(0x2222)))],
                    csum: Some(ChecksumSpec {
                        csum_offset: CSUM_OFF,
                        skip_words: SKIP_WORDS,
                    }),
                    reuse_body_csum: true,
                    interrupt_on_complete: false,
                    token: 8,
                },
                Time(1_000_000),
                &hm,
            )
            .unwrap();
        assert!(matches!(ev, CabEvent::SdmaDone { .. }));
        assert_eq!(cab.stats.body_csum_reuses, 1);
        let mut body = vec![0u8; 4096];
        hm.read_user(task, 0x10000, &mut body).unwrap();
        let mut got = [0u8; 2];
        cab.read_packet(id, CSUM_OFF, &mut got);
        assert_eq!(u16::from_be_bytes(got), expected_csum(0x2222, &body));
    }

    #[test]
    fn word_alignment_enforced() {
        let (mut cab, hm, task) = setup();
        let id = cab.alloc_packet(HDR + 100).unwrap();
        let err = cab
            .sdma_tx(
                SdmaTx {
                    packet: id,
                    sg: vec![
                        SgEntry::Inline(Bytes::from(header_with_seed(0))),
                        SgEntry::User {
                            task,
                            vaddr: 0x10002, // not word aligned
                            len: 100,
                        },
                    ],
                    csum: None,
                    reuse_body_csum: false,
                    interrupt_on_complete: false,
                    token: 0,
                },
                Time::ZERO,
                &hm,
            )
            .unwrap_err();
        assert!(matches!(err, CabError::BadRequest(_)));
    }

    #[test]
    fn partial_packet_rejected() {
        let (mut cab, hm, _) = setup();
        let id = cab.alloc_packet(1000).unwrap();
        let err = cab
            .sdma_tx(
                SdmaTx {
                    packet: id,
                    sg: vec![SgEntry::Inline(Bytes::from(vec![0u8; 999]))],
                    csum: None,
                    reuse_body_csum: false,
                    interrupt_on_complete: false,
                    token: 0,
                },
                Time::ZERO,
                &hm,
            )
            .unwrap_err();
        assert_eq!(
            err,
            CabError::BadRequest("sg total must fill the packet buffer exactly")
        );
    }

    #[test]
    fn mdma_then_receive_round_trip() {
        let (mut cab_a, hm, task) = setup();
        let mut cab_b = Cab::new(2, CabConfig::default());
        let (id, sdma) = tx_packet(&mut cab_a, &hm, task, 0x4242, 0x10000, 8192);
        // MDMA starts when the SDMA gather completes (the driver's
        // sdma_done -> mdma convention; overlapping the two is the
        // ownership hazard dma-check exists to catch).
        let ev = cab_a.mdma_tx(id, 2, 0, sdma.at(), false).unwrap();
        let CabEvent::FrameOut { frame, dst, .. } = ev else {
            panic!()
        };
        assert_eq!(dst, 2);
        assert_eq!(frame.len(), HDR + 8192);
        // Deliver to the receiver CAB.
        let rx = cab_b.receive_frame(frame.clone(), Time(2_000_000));
        let CabEvent::RxReady {
            packet,
            autodma,
            hw_csum,
            frame_len,
            ..
        } = rx
        else {
            panic!()
        };
        assert_eq!(frame_len, frame.len());
        let pkt = packet.expect("large frame stays outboard");
        assert_eq!(autodma.len(), cab_b.config().autodma_bytes());
        // Hardware rx checksum equals a software sum from the skip offset.
        let skip = cab_b.config().rx_csum_skip_words * 4;
        let mut acc = Accumulator::new();
        acc.add_bytes(&frame[skip..]);
        assert_eq!(hw_csum, acc.partial());
        // Copy-out to a second process and compare bytes.
        let mut hm2 = HostMem::new();
        let t2 = TaskId(9);
        hm2.create_region(t2, 0x8000, 64 * 1024);
        let ev = cab_b
            .sdma_rx(
                SdmaRx {
                    packet: pkt,
                    src_off: HDR,
                    len: 8192,
                    dst: SdmaDst::User {
                        task: t2,
                        vaddr: 0x8000,
                    },
                    free_packet: true,
                    interrupt_on_complete: true,
                    token: 3,
                },
                Time(3_000_000),
                &mut hm2,
            )
            .unwrap();
        assert!(matches!(
            ev,
            CabEvent::SdmaDone {
                interrupt: true,
                ..
            }
        ));
        let mut original = vec![0u8; 8192];
        hm.read_user(task, 0x10000, &mut original).unwrap();
        let mut received = vec![0u8; 8192];
        hm2.read_user(t2, 0x8000, &mut received).unwrap();
        assert_eq!(original, received, "end-to-end data integrity");
        assert_eq!(cab_b.netmem().packet_count(), 0, "freed after copy-out");
    }

    #[test]
    fn small_frame_fits_autodma() {
        let mut cab = Cab::new(1, CabConfig::default());
        let frame = Bytes::from(vec![0x5Au8; 200]);
        let ev = cab.receive_frame(frame.clone(), Time::ZERO);
        let CabEvent::RxReady {
            packet, autodma, ..
        } = ev
        else {
            panic!()
        };
        assert!(packet.is_none(), "whole frame in the auto-DMA buffer");
        assert_eq!(autodma, frame);
        assert_eq!(cab.stats.autodma_only_rx, 1);
        assert_eq!(cab.netmem().packet_count(), 0);
    }

    #[test]
    fn rx_drops_when_netmem_full() {
        let cfg = CabConfig {
            net_mem_bytes: 16 * 1024, // 4 pages only
            ..CabConfig::default()
        };
        let mut cab = Cab::new(1, cfg);
        let f1 = Bytes::from(vec![0u8; 16 * 1024]);
        let ev1 = cab.receive_frame(f1, Time::ZERO);
        assert!(matches!(ev1, CabEvent::RxReady { .. }));
        let f2 = Bytes::from(vec![0u8; 16 * 1024]);
        let ev2 = cab.receive_frame(f2, Time(1));
        assert!(matches!(ev2, CabEvent::RxDropped { .. }));
        assert_eq!(cab.stats.rx_dropped_nomem, 1);
    }

    #[test]
    fn engine_times_are_serialized_and_concurrent() {
        let (mut cab, hm, task) = setup();
        // Two SDMA requests: the second starts after the first.
        let (_, ev1) = tx_packet(&mut cab, &hm, task, 0, 0x10000, 32 * 1024);
        let (_, ev2) = tx_packet(&mut cab, &hm, task, 0, 0x20000, 32 * 1024);
        let (t1, t2) = (ev1.at(), ev2.at());
        assert!(t2 > t1);
        let gap = t2 - t1;
        // The second transfer takes ~ as long as the first's transfer time.
        assert!(gap.as_micros_f64() > 1000.0, "32 KB at 150 Mb/s > 1.7ms");
    }

    #[test]
    fn sdma_timing_matches_bandwidth_model() {
        let (mut cab, hm, task) = setup();
        let (_, ev) = tx_packet(&mut cab, &hm, task, 0, 0x10000, 32 * 1024);
        // setup 30us + 2 sg entries * 2us + (80 + 32768) bytes at 150 Mb/s.
        let xfer_us = (HDR + 32 * 1024) as f64 * 8.0 / 150.0;
        let expect = 30.0 + 4.0 + xfer_us;
        let got = (ev.at() - Time::ZERO).as_micros_f64();
        assert!(
            (got - expect).abs() < 2.0,
            "sdma time {got}us vs expected {expect}us"
        );
    }

    #[test]
    fn verifies_like_a_receiver_would() {
        // Full-circle: seeds computed the way the stack will compute them
        // yield a segment the standard verifier accepts.
        let (mut cab, hm, task) = setup();
        let src = [10, 0, 0, 1];
        let dst = [10, 0, 0, 2];
        let payload_len = 4096usize;
        // "Transport segment" = bytes from CSUM area start... for this test
        // treat the last 20 bytes of HDR as the transport header.
        let thdr_off = HDR - 20;
        let mut header = header_with_seed(0);
        // zero checksum field then compute seed over transport hdr + pseudo.
        header[CSUM_OFF..CSUM_OFF + 2].copy_from_slice(&[0, 0]);
        let pseudo = pseudo_header_sum(src, dst, 6, (20 + payload_len) as u16);
        let mut acc = Accumulator::from_partial(pseudo);
        acc.add_bytes(&header[thdr_off..HDR]);
        let seed = acc.partial();
        header[CSUM_OFF..CSUM_OFF + 2].copy_from_slice(&seed.to_be_bytes());

        let id = cab.alloc_packet(HDR + payload_len).unwrap();
        cab.sdma_tx(
            SdmaTx {
                packet: id,
                sg: vec![
                    SgEntry::Inline(Bytes::from(header)),
                    SgEntry::User {
                        task,
                        vaddr: 0x10000,
                        len: payload_len,
                    },
                ],
                csum: Some(ChecksumSpec {
                    csum_offset: CSUM_OFF,
                    skip_words: SKIP_WORDS,
                }),
                reuse_body_csum: false,
                interrupt_on_complete: false,
                token: 0,
            },
            Time::ZERO,
            &hm,
        )
        .unwrap();
        let mut segment = vec![0u8; 20 + payload_len];
        cab.read_packet(id, thdr_off, &mut segment);
        assert!(
            verify_transport(pseudo, &segment),
            "receiver-side verification of hardware-inserted checksum"
        );
    }
}
