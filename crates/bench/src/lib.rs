//! Shared helpers for the benchmark harness.
//!
//! Each paper table/figure has a binary in `src/bin/`:
//!
//! | target | reproduces |
//! |---|---|
//! | `fig5` | Figure 5: throughput / utilization / efficiency vs size, Alpha 3000/400 |
//! | `fig6` | Figure 6: the same on the Alpha 3000/300LX |
//! | `table1` | Table 1: host-interface taxonomy |
//! | `table2` | Table 2: VM operation costs (measured + least-squares fit) |
//! | `analysis` | §7.3: analytic efficiency estimates vs simulation |
//! | `hol` | §2.1: FIFO head-of-line blocking vs logical channels |
//! | `crossover` | §4.4.3/§4.5 ablations: path choice and alignment fallback |
//!
//! Criterion micro-benches live in `benches/`.

use outboard_host::MachineConfig;
use outboard_sim::Dur;
use outboard_stack::StackConfig;
use outboard_testbed::{run_ttcp, ExperimentConfig, Metrics};

pub mod sweep;

/// The read/write sizes of Figures 5 and 6 (1 KB .. 512 KB).
pub fn figure_sizes() -> Vec<usize> {
    (0..10).map(|i| 1024usize << i).collect()
}

/// Transfer enough bytes for steady state without wasting wall time.
pub fn total_for(write_size: usize) -> usize {
    (write_size * 64).clamp(2 * 1024 * 1024, 16 * 1024 * 1024)
}

/// One figure point for a given stack flavor.
pub fn figure_point(machine: &MachineConfig, single_copy: bool, write_size: usize) -> Metrics {
    let stack = if single_copy {
        let mut s = StackConfig::single_copy();
        // §7.2: "the measurements for the modified stack always use the
        // single-copy path".
        s.force_single_copy = true;
        s
    } else {
        StackConfig::unmodified()
    };
    let mut cfg = ExperimentConfig::new(machine.clone(), stack, write_size);
    cfg.total_bytes = total_for(write_size);
    cfg.verify = false; // checked extensively in tests; keep benches honest
    fault_args().apply(&mut cfg);
    timeline_args().apply(&mut cfg);
    run_ttcp(&cfg)
}

/// One rendered row of Figure 5/6: both stacks plus the raw-HIPPI bound
/// at a single write size.
pub struct FigureRow {
    /// Read/write size in bytes.
    pub size: usize,
    /// Unmodified-stack run.
    pub un: Metrics,
    /// Single-copy-stack run.
    pub sc: Metrics,
    /// Raw HIPPI throughput bound, Mbit/s.
    pub raw_mbps: f64,
}

/// Compute every point of one figure, fanning the independent experiment
/// runs across the sweep runner (`--jobs`/`OUTBOARD_JOBS`). Results come
/// back in size order, so rendering is identical to a serial run.
pub fn compute_figure(machine: &MachineConfig) -> Vec<FigureRow> {
    let sizes = figure_sizes();
    // Two runs per size, interleaved (un, sc) exactly like the old serial
    // loop so a `--jobs 1` sweep reproduces the historical run order.
    let items: Vec<(usize, bool)> = sizes
        .iter()
        .flat_map(|&s| [(s, false), (s, true)])
        .collect();
    let mut results = sweep::run_sweep("figure", &items, |&(size, sc)| {
        figure_point(machine, sc, size)
    })
    .into_iter();
    sizes
        .into_iter()
        .map(|size| {
            let un = results.next().expect("figure sweep lost a point");
            let sc = results.next().expect("figure sweep lost a point");
            // The raw-HIPPI bound is a closed-form microbench, cheap enough
            // to fill in serially during row assembly.
            let raw = outboard_testbed::raw_hippi_throughput(machine, size.min(32 * 1024), 200);
            FigureRow {
                size,
                un,
                sc,
                raw_mbps: raw,
            }
        })
        .collect()
}

/// Render one figure (three panels) as aligned text plus CSV.
pub fn print_figure(machine: &MachineConfig) {
    println!("# {}", machine.name);
    let faults = fault_args();
    if faults.any() {
        println!("# fault injection active: {faults:?}");
    }
    println!("# series: unmodified stack, modified (single-copy) stack, raw HIPPI");
    println!(
        "{:>8} | {:>9} {:>9} {:>9} | {:>8} {:>8} | {:>9} {:>9} | {:>9} {:>9}",
        "size_KB",
        "un_Mbps",
        "sc_Mbps",
        "raw_Mbps",
        "un_util",
        "sc_util",
        "un_eff",
        "sc_eff",
        "un_eff_rx",
        "sc_eff_rx"
    );
    let mut csv = String::from(
        "size_kb,unmodified_mbps,singlecopy_mbps,raw_mbps,unmodified_util,singlecopy_util,unmodified_eff,singlecopy_eff\n",
    );
    for row in compute_figure(machine) {
        let FigureRow {
            size,
            un,
            sc,
            raw_mbps: raw,
        } = row;
        // The paper: "The utilization results are for the sender, but the
        // results on the receiver are similar" — report both.
        println!(
            "{:>8} | {:>9.1} {:>9.1} {:>9.1} | {:>8.2} {:>8.2} | {:>9.0} {:>9.0} | {:>9.0} {:>9.0}",
            size / 1024,
            un.throughput_mbps,
            sc.throughput_mbps,
            raw,
            un.sender_utilization,
            sc.sender_utilization,
            un.sender_efficiency_mbps,
            sc.sender_efficiency_mbps,
            un.receiver_efficiency_mbps,
            sc.receiver_efficiency_mbps
        );
        csv.push_str(&format!(
            "{},{:.1},{:.1},{:.1},{:.3},{:.3},{:.0},{:.0}\n",
            size / 1024,
            un.throughput_mbps,
            sc.throughput_mbps,
            raw,
            un.sender_utilization,
            sc.sender_utilization,
            un.sender_efficiency_mbps,
            sc.sender_efficiency_mbps
        ));
    }
    println!("\n-- CSV --\n{csv}");
}

/// Did the user pass the shared `--stats` flag?
pub fn stats_requested() -> bool {
    std::env::args().any(|a| a == "--stats")
}

/// Fault-injection knobs shared by every benchmark binary.
///
/// Each field maps to one `--fault-*` flag (see `fault_args` for the
/// spellings) and feeds the matching [`ExperimentConfig`] field, so any
/// figure can be re-run under loss, corruption, or adaptor faults to watch
/// the recovery machinery's cost.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultArgs {
    /// `--fault-drop`: forward-link drop probability.
    pub drop_p: f64,
    /// `--fault-corrupt`: forward-link bit-flip probability.
    pub corrupt_p: f64,
    /// `--fault-reorder`: forward-link late-delivery probability.
    pub reorder_p: f64,
    /// `--fault-dup`: forward-link duplication probability.
    pub dup_p: f64,
    /// `--fault-cab-alloc`: CAB netmem allocation-failure probability.
    pub cab_alloc_fail_p: f64,
    /// `--fault-cab-sdma`: CAB SDMA transfer-failure probability.
    pub cab_sdma_fail_p: f64,
    /// `--fault-cab-mdma`: CAB MDMA transfer-failure probability.
    pub cab_mdma_fail_p: f64,
    /// `--fault-cab-wedge`: probability a failed transfer wedges an engine.
    pub cab_wedge_p: f64,
    /// `--fault-cab-csum`: probability of a miscomputed outboard checksum.
    pub cab_csum_error_p: f64,
}

impl FaultArgs {
    /// Copy the knobs into an experiment configuration.
    pub fn apply(&self, cfg: &mut ExperimentConfig) {
        cfg.drop_p = self.drop_p;
        cfg.corrupt_p = self.corrupt_p;
        cfg.reorder_p = self.reorder_p;
        cfg.dup_p = self.dup_p;
        cfg.cab_alloc_fail_p = self.cab_alloc_fail_p;
        cfg.cab_sdma_fail_p = self.cab_sdma_fail_p;
        cfg.cab_mdma_fail_p = self.cab_mdma_fail_p;
        cfg.cab_wedge_p = self.cab_wedge_p;
        cfg.cab_csum_error_p = self.cab_csum_error_p;
    }

    /// True when any knob is non-zero (used to annotate figure headers).
    pub fn any(&self) -> bool {
        *self != FaultArgs::default()
    }
}

/// Parse the shared `--fault-*` flags (`--fault-drop 0.05` or
/// `--fault-drop=0.05`). Unknown flags are left for the binary; a malformed
/// probability aborts with a message rather than silently running fault-free.
pub fn fault_args() -> FaultArgs {
    let mut f = FaultArgs::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 0;
    while i < argv.len() {
        let (flag, inline) = match argv[i].split_once('=') {
            Some((name, val)) => (name, Some(val.to_string())),
            None => (argv[i].as_str(), None),
        };
        let slot = match flag {
            "--fault-drop" => Some(0),
            "--fault-corrupt" => Some(1),
            "--fault-reorder" => Some(2),
            "--fault-dup" => Some(3),
            "--fault-cab-alloc" => Some(4),
            "--fault-cab-sdma" => Some(5),
            "--fault-cab-mdma" => Some(6),
            "--fault-cab-wedge" => Some(7),
            "--fault-cab-csum" => Some(8),
            _ => None,
        };
        let Some(slot) = slot else {
            i += 1;
            continue;
        };
        let val = match inline {
            Some(v) => v,
            None => {
                i += 1;
                argv.get(i).cloned().unwrap_or_default()
            }
        };
        let p: f64 = match val.parse() {
            Ok(p) if (0.0..=1.0).contains(&p) => p,
            _ => {
                eprintln!("{flag} needs a probability in [0, 1], got {val:?}");
                std::process::exit(2);
            }
        };
        match slot {
            0 => f.drop_p = p,
            1 => f.corrupt_p = p,
            2 => f.reorder_p = p,
            3 => f.dup_p = p,
            4 => f.cab_alloc_fail_p = p,
            5 => f.cab_sdma_fail_p = p,
            6 => f.cab_mdma_fail_p = p,
            7 => f.cab_wedge_p = p,
            _ => f.cab_csum_error_p = p,
        }
        i += 1;
    }
    f
}

/// Causal-trace knobs shared by every benchmark binary.
///
/// `--trace-out FILE` asks the binary to run one representative traced
/// experiment and write a Chrome trace-event / Perfetto JSON timeline to
/// `FILE`; `--trace-flows N` caps how many flows get flow arrows (0 = all).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceArgs {
    /// `--trace-out`: destination file for the Perfetto JSON trace.
    pub out: Option<String>,
    /// `--trace-flows`: flow-arrow cap (`None` = the experiment default).
    pub flows: Option<Option<usize>>,
}

/// Parse the shared `--trace-*` flags (`--trace-out trace.json` or
/// `--trace-out=trace.json`). A missing filename or malformed flow count
/// aborts rather than silently running untraced.
pub fn trace_args() -> TraceArgs {
    let mut t = TraceArgs::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 0;
    while i < argv.len() {
        let (flag, inline) = match argv[i].split_once('=') {
            Some((name, val)) => (name, Some(val.to_string())),
            None => (argv[i].as_str(), None),
        };
        if flag != "--trace-out" && flag != "--trace-flows" {
            i += 1;
            continue;
        }
        let val = match inline {
            Some(v) => v,
            None => {
                i += 1;
                argv.get(i).cloned().unwrap_or_default()
            }
        };
        if flag == "--trace-out" {
            if val.is_empty() || val.starts_with("--") {
                eprintln!("--trace-out needs a filename, got {val:?}");
                std::process::exit(2);
            }
            t.out = Some(val);
        } else {
            match val.parse::<usize>() {
                Ok(0) => t.flows = Some(None),
                Ok(n) => t.flows = Some(Some(n)),
                Err(_) => {
                    eprintln!("--trace-flows needs a count (0 = all), got {val:?}");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    t
}

/// Windowed-telemetry knobs shared by every benchmark binary.
///
/// `--timeline` turns the sampler on for every experiment the binary runs;
/// `--timeline-window-us N` overrides the sampling window (default 1000 µs
/// of virtual time). Timelines surface three ways: counter tracks merged
/// into any `--trace-out` Perfetto file, `timeline_<tag>.json/.csv`
/// snapshots next to the `stats_*` files under `--stats`, and an ASCII
/// sparkline summary on stdout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineArgs {
    /// `--timeline`: enable windowed sampling.
    pub enabled: bool,
    /// `--timeline-window-us`: sampling window override, microseconds.
    pub window_us: Option<u64>,
}

impl TimelineArgs {
    /// Copy the knobs into an experiment configuration.
    pub fn apply(&self, cfg: &mut ExperimentConfig) {
        if self.enabled {
            cfg.timeline_enabled = true;
        }
        if let Some(us) = self.window_us {
            cfg.timeline_window = Dur::micros(us);
        }
    }
}

/// Parse the shared `--timeline*` flags (`--timeline`,
/// `--timeline-window-us 500` or `--timeline-window-us=500`). A malformed
/// window aborts rather than silently sampling on the default.
pub fn timeline_args() -> TimelineArgs {
    let mut t = TimelineArgs::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 0;
    while i < argv.len() {
        let (flag, inline) = match argv[i].split_once('=') {
            Some((name, val)) => (name, Some(val.to_string())),
            None => (argv[i].as_str(), None),
        };
        match flag {
            "--timeline" => t.enabled = true,
            "--timeline-window-us" => {
                let val = match inline {
                    Some(v) => v,
                    None => {
                        i += 1;
                        argv.get(i).cloned().unwrap_or_default()
                    }
                };
                match val.parse::<u64>() {
                    Ok(us) if us > 0 => {
                        t.enabled = true;
                        t.window_us = Some(us);
                    }
                    _ => {
                        eprintln!("--timeline-window-us needs a positive count, got {val:?}");
                        std::process::exit(2);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    t
}

/// Honor `--trace-out`: re-run one representative point (single-copy stack,
/// 64 KB writes, any `--fault-*` flags still applied) with span tracing
/// enabled, write the Perfetto/chrome-trace JSON, and print the
/// critical-path attribution for the busiest flow. A no-op when the flag
/// was not passed, so every binary can call this unconditionally.
pub fn emit_trace(machine: &MachineConfig) {
    let t = trace_args();
    let Some(path) = t.out else { return };
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(machine.clone(), stack, 64 * 1024);
    cfg.total_bytes = total_for(64 * 1024);
    cfg.verify = false;
    fault_args().apply(&mut cfg);
    timeline_args().apply(&mut cfg);
    cfg.trace_spans = true;
    if let Some(flows) = t.flows {
        cfg.trace_flows = flows;
    }
    let m = run_ttcp(&cfg);
    println!("\n== causal trace (single-copy stack, 64 KB writes) ==\n");
    let opened = m.stats.counter_value("world.spans.opened");
    let evicted = m.stats.counter_value("world.spans.evicted");
    println!("spans recorded: {opened} (evicted: {evicted})");
    if m.stats.get("world.timeline.windows").is_some() {
        println!(
            "timeline windows: {} ({} series; counter tracks merged into the trace)",
            m.stats.counter_value("world.timeline.windows"),
            m.stats.counter_value("world.timeline.series"),
        );
    }
    if let Some(cp) = &m.critical_path {
        print!("{}", cp.render());
    }
    match std::fs::write(&path, m.trace_json.as_deref().unwrap_or_default()) {
        Ok(()) => println!("wrote {path} (open in https://ui.perfetto.dev or chrome://tracing)"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Render and persist a full metrics snapshot for one representative run.
///
/// Runs a single-copy 64 KB-write transfer on `machine`, prints the
/// deterministic [`MetricsRegistry::report`] (SDMA/MDMA busy fractions,
/// page-pool high-water marks, CPU shares, netstat-style TCP counters, link
/// and fabric totals), and writes machine-readable `stats_<tag>.json` and
/// `stats_<tag>.csv` snapshots next to the figure's results files.
///
/// [`MetricsRegistry::report`]: outboard_sim::MetricsRegistry::report
pub fn emit_stats(tag: &str, machine: &MachineConfig) {
    let m = figure_point(machine, true, 64 * 1024);
    println!("\n== per-run stats (single-copy stack, 64 KB writes) ==\n");
    print!("{}", m.stats.report());
    let json = format!("stats_{tag}.json");
    let csv = format!("stats_{tag}.csv");
    match std::fs::write(&json, m.stats.to_json())
        .and_then(|()| std::fs::write(&csv, m.stats.to_csv()))
    {
        Ok(()) => println!("\nwrote {json} and {csv}"),
        Err(e) => eprintln!("\nfailed to write stats snapshots: {e}"),
    }
    // Timeline artifacts ride along when `--timeline` was passed: the
    // sparkline summary on stdout, JSON/CSV next to the stats files.
    if let (Some(tj), Some(tc), Some(ts)) = (&m.timeline_json, &m.timeline_csv, &m.timeline_summary)
    {
        println!("\n== timeline (single-copy stack, 64 KB writes) ==\n");
        print!("{ts}");
        let tjson = format!("timeline_{tag}.json");
        let tcsv = format!("timeline_{tag}.csv");
        match std::fs::write(&tjson, tj).and_then(|()| std::fs::write(&tcsv, tc)) {
            Ok(()) => println!("\nwrote {tjson} and {tcsv}"),
            Err(e) => eprintln!("\nfailed to write timeline snapshots: {e}"),
        }
    }
}
