//! Ablations: §4.4.3 size-based path choice and §4.5 alignment fallback.

use outboard_host::MachineConfig;
use outboard_stack::StackConfig;
use outboard_testbed::{run_ttcp, ExperimentConfig};

fn run(
    machine: &MachineConfig,
    stack: StackConfig,
    ws: usize,
    misalign: u64,
) -> outboard_testbed::Metrics {
    let mut cfg = ExperimentConfig::new(machine.clone(), stack, ws);
    cfg.total_bytes = (ws * 64).clamp(2 * 1024 * 1024, 8 * 1024 * 1024);
    cfg.verify = false;
    cfg.sender_misalign = misalign;
    run_ttcp(&cfg)
}

fn main() {
    let m = MachineConfig::alpha_3000_400();
    println!("== ablation 1 (§4.4.3): forced single-copy vs adaptive path choice ==\n");
    println!(
        "{:>8} | {:>10} {:>10} {:>10}",
        "size_KB", "forced_eff", "adapt_eff", "unmod_eff"
    );
    for k in [1usize, 4, 8, 16, 64] {
        let ws = k * 1024;
        let mut forced = StackConfig::single_copy();
        forced.force_single_copy = true;
        let f = run(&m, forced, ws, 0);
        let a = run(&m, StackConfig::single_copy(), ws, 0); // adaptive, 16 KB threshold
        let u = run(&m, StackConfig::unmodified(), ws, 0);
        println!(
            "{:>8} | {:>10.0} {:>10.0} {:>10.0}",
            k, f.sender_efficiency_mbps, a.sender_efficiency_mbps, u.sender_efficiency_mbps
        );
    }
    println!("\nadaptive == unmodified below the 16 KB threshold, == forced above it.");

    println!("\n== ablation 2 (§4.5): word-aligned vs misaligned user buffers ==\n");
    println!(
        "{:>10} {:>11} | {:>9} {:>8} {:>9}",
        "misalign_B", "align_split", "thr_Mbps", "util", "eff_Mbps"
    );
    for (mis, split) in [(0u64, false), (1, false), (2, false), (2, true)] {
        let mut forced = StackConfig::single_copy();
        forced.force_single_copy = true;
        forced.align_split = split;
        let r = run(&m, forced, 256 * 1024, mis);
        println!(
            "{:>10} {:>11} | {:>9.1} {:>8.2} {:>9.0}",
            mis, split, r.throughput_mbps, r.sender_utilization, r.sender_efficiency_mbps
        );
    }
    println!("\nmisaligned buffers fall back to the traditional copy path; the");
    println!("align-split extension (the paper's unimplemented idea) recovers");
    println!("most of the single-copy win by sending one short copied packet.");

    println!("\n== ablation 3 (§4.4.1): lazy unpinning with buffer reuse ==\n");
    println!(
        "{:>6} | {:>9} {:>8} {:>9}",
        "lazy", "thr_Mbps", "util", "eff_Mbps"
    );
    for lazy in [false, true] {
        let mut stack = StackConfig::single_copy();
        stack.force_single_copy = true;
        stack.lazy_vm = lazy;
        let r = run(&m, stack, 64 * 1024, 0);
        println!(
            "{:>6} | {:>9.1} {:>8.2} {:>9.0}",
            lazy, r.throughput_mbps, r.sender_utilization, r.sender_efficiency_mbps
        );
    }
    println!("\nttcp reuses one buffer, so lazy unpinning eliminates most VM cost.");

    println!("\n== ablation 4 (§7.2): TCP window size vs unmodified-stack efficiency ==\n");
    println!(
        "{:>9} | {:>9} {:>8} {:>9}",
        "window_KB", "thr_Mbps", "util", "eff_Mbps"
    );
    for wk in [64usize, 128, 256, 512] {
        let mut stack = StackConfig::unmodified();
        stack.sock_buf = wk * 1024;
        let mut cfg = ExperimentConfig::new(m.clone(), stack, 256 * 1024);
        cfg.total_bytes = 8 * 1024 * 1024;
        cfg.verify = false;
        let r = run_ttcp(&cfg);
        println!(
            "{:>9} | {:>9.1} {:>8.2} {:>9.0}",
            wk, r.throughput_mbps, r.sender_utilization, r.sender_efficiency_mbps
        );
    }
    println!("\npaper: 'reducing the TCP window increases efficiency slightly,");
    println!("even though the throughput is lower' (a cache effect).");
    if outboard_bench::stats_requested() {
        outboard_bench::emit_stats("crossover", &m);
    }
}
