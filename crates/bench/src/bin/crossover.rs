//! Ablations: §4.4.3 size-based path choice and §4.5 alignment fallback.
//!
//! Each ablation is a sweep of independent runs, fanned out across the
//! shared `--jobs`/`OUTBOARD_JOBS` worker pool and rendered in fixed
//! order so output is byte-identical to a serial run.

use outboard_bench::sweep::run_sweep;
use outboard_host::MachineConfig;
use outboard_stack::StackConfig;
use outboard_testbed::{run_ttcp, ExperimentConfig};

fn run(
    machine: &MachineConfig,
    stack: StackConfig,
    ws: usize,
    misalign: u64,
) -> outboard_testbed::Metrics {
    let mut cfg = ExperimentConfig::new(machine.clone(), stack, ws);
    cfg.total_bytes = (ws * 64).clamp(2 * 1024 * 1024, 8 * 1024 * 1024);
    cfg.verify = false;
    cfg.sender_misalign = misalign;
    run_ttcp(&cfg)
}

/// The three stack variants of ablation 1, in column order.
fn ablation1_stack(variant: usize) -> StackConfig {
    match variant {
        0 => {
            let mut forced = StackConfig::single_copy();
            forced.force_single_copy = true;
            forced
        }
        1 => StackConfig::single_copy(), // adaptive, 16 KB threshold
        _ => StackConfig::unmodified(),
    }
}

fn main() {
    let m = MachineConfig::alpha_3000_400();
    println!("== ablation 1 (§4.4.3): forced single-copy vs adaptive path choice ==\n");
    println!(
        "{:>8} | {:>10} {:>10} {:>10}",
        "size_KB", "forced_eff", "adapt_eff", "unmod_eff"
    );
    let ks = [1usize, 4, 8, 16, 64];
    let items: Vec<(usize, usize)> = ks.iter().flat_map(|&k| [(k, 0), (k, 1), (k, 2)]).collect();
    let runs = run_sweep("crossover-path-choice", &items, |&(k, variant)| {
        run(&m, ablation1_stack(variant), k * 1024, 0)
    });
    for (i, &k) in ks.iter().enumerate() {
        let (f, a, u) = (&runs[3 * i], &runs[3 * i + 1], &runs[3 * i + 2]);
        println!(
            "{:>8} | {:>10.0} {:>10.0} {:>10.0}",
            k, f.sender_efficiency_mbps, a.sender_efficiency_mbps, u.sender_efficiency_mbps
        );
    }
    println!("\nadaptive == unmodified below the 16 KB threshold, == forced above it.");

    println!("\n== ablation 2 (§4.5): word-aligned vs misaligned user buffers ==\n");
    println!(
        "{:>10} {:>11} | {:>9} {:>8} {:>9}",
        "misalign_B", "align_split", "thr_Mbps", "util", "eff_Mbps"
    );
    let align_items = [(0u64, false), (1, false), (2, false), (2, true)];
    let align_runs = run_sweep("crossover-alignment", &align_items, |&(mis, split)| {
        let mut forced = StackConfig::single_copy();
        forced.force_single_copy = true;
        forced.align_split = split;
        run(&m, forced, 256 * 1024, mis)
    });
    for ((mis, split), r) in align_items.iter().zip(&align_runs) {
        println!(
            "{:>10} {:>11} | {:>9.1} {:>8.2} {:>9.0}",
            mis, split, r.throughput_mbps, r.sender_utilization, r.sender_efficiency_mbps
        );
    }
    println!("\nmisaligned buffers fall back to the traditional copy path; the");
    println!("align-split extension (the paper's unimplemented idea) recovers");
    println!("most of the single-copy win by sending one short copied packet.");

    println!("\n== ablation 3 (§4.4.1): lazy unpinning with buffer reuse ==\n");
    println!(
        "{:>6} | {:>9} {:>8} {:>9}",
        "lazy", "thr_Mbps", "util", "eff_Mbps"
    );
    let lazy_items = [false, true];
    let lazy_runs = run_sweep("crossover-lazy-vm", &lazy_items, |&lazy| {
        let mut stack = StackConfig::single_copy();
        stack.force_single_copy = true;
        stack.lazy_vm = lazy;
        run(&m, stack, 64 * 1024, 0)
    });
    for (lazy, r) in lazy_items.iter().zip(&lazy_runs) {
        println!(
            "{:>6} | {:>9.1} {:>8.2} {:>9.0}",
            lazy, r.throughput_mbps, r.sender_utilization, r.sender_efficiency_mbps
        );
    }
    println!("\nttcp reuses one buffer, so lazy unpinning eliminates most VM cost.");

    println!("\n== ablation 4 (§7.2): TCP window size vs unmodified-stack efficiency ==\n");
    println!(
        "{:>9} | {:>9} {:>8} {:>9}",
        "window_KB", "thr_Mbps", "util", "eff_Mbps"
    );
    let windows = [64usize, 128, 256, 512];
    let window_runs = run_sweep("crossover-window", &windows, |&wk| {
        let mut stack = StackConfig::unmodified();
        stack.sock_buf = wk * 1024;
        let mut cfg = ExperimentConfig::new(m.clone(), stack, 256 * 1024);
        cfg.total_bytes = 8 * 1024 * 1024;
        cfg.verify = false;
        run_ttcp(&cfg)
    });
    for (wk, r) in windows.iter().zip(&window_runs) {
        println!(
            "{:>9} | {:>9.1} {:>8.2} {:>9.0}",
            wk, r.throughput_mbps, r.sender_utilization, r.sender_efficiency_mbps
        );
    }
    println!("\npaper: 'reducing the TCP window increases efficiency slightly,");
    println!("even though the throughput is lower' (a cache effect).");
    if outboard_bench::stats_requested() {
        outboard_bench::emit_stats("crossover", &m);
    }
    outboard_bench::emit_trace(&m);
}
