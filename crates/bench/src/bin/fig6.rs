//! Figure 6: throughput, utilization and efficiency on the Alpha
//! 3000/300LX (125 MHz, half-speed Turbochannel).

use outboard_host::MachineConfig;

fn main() {
    println!("== Figure 6: Alpha 3000/300LX ==\n");
    outboard_bench::print_figure(&MachineConfig::alpha_3000_300lx());
    println!("paper anchor: on this slower machine the more efficient");
    println!("single-copy stack yields *higher* throughput at large sizes.");
    if outboard_bench::stats_requested() {
        outboard_bench::emit_stats("fig6", &MachineConfig::alpha_3000_300lx());
    }
    outboard_bench::emit_trace(&MachineConfig::alpha_3000_300lx());
}
