//! Deterministic chaos sweep: N seeded fault schedules against the ttcp
//! testbed, each judged by the end-to-end oracle (stream integrity,
//! conservation, liveness). Failing schedules are delta-debugged to a
//! locally minimal repro and written out as `repro_<seed>.json`, replayable
//! byte-identically with `--replay`.
//!
//! ```text
//! chaos [--seeds N] [--start-seed S] [--events K] [--smoke] [--jobs J]
//!       [--out DIR] [--plant-bug] [--replay FILE] [--stats]
//! ```
//!
//! * `--seeds N`      schedules to sweep (default 32, smoke default 8)
//! * `--start-seed S` first seed (default 1)
//! * `--events K`     events per generated schedule (default 6)
//! * `--smoke`        small transfers for CI
//! * `--jobs J`       sweep worker threads (also `OUTBOARD_JOBS`)
//! * `--out DIR`      where repro files go (default `.`)
//! * `--plant-bug`    add a checksum-preserving corruption event to every
//!   schedule — the oracle must catch it (exits 1)
//! * `--replay FILE`  run one `repro_*.json` schedule and report
//! * `--stats`        print the full metrics registry after a replay
//!
//! Exit status: 0 all seeds clean, 1 oracle violation, 2 usage error.

use outboard_bench::sweep;
use outboard_host::MachineConfig;
use outboard_sim::chaos::{ChaosAction, ChaosEvent, ChaosSchedule};
use outboard_sim::Dur;
use outboard_stack::StackConfig;
use outboard_testbed::chaos::{run_chaos, shrink_failure, DEFAULT_LIVENESS_BUDGET};
use outboard_testbed::ExperimentConfig;

fn arg_value(name: &str) -> Option<String> {
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 0;
    while i < argv.len() {
        if let Some((flag, val)) = argv[i].split_once('=') {
            if flag == name {
                return Some(val.to_string());
            }
        } else if argv[i] == name {
            return Some(argv.get(i + 1).cloned().unwrap_or_default());
        }
        i += 1;
    }
    None
}

fn flag_present(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn parse_num(name: &str, val: &str) -> u64 {
    match val.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("{name} needs an unsigned integer, got {val:?}");
            std::process::exit(2);
        }
    }
}

fn base_cfg(seed: u64, total: usize) -> ExperimentConfig {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = total;
    cfg.seed = seed;
    // The integrity oracle needs pattern verification.
    cfg.verify = true;
    // Flight recorder: chaos runs always sample a timeline so an oracle
    // failure can dump its last windows as flight_<seed>.json. Export
    // strings are not rendered (the flight dump reads the world directly).
    cfg.timeline_enabled = true;
    cfg.timeline_export = false;
    outboard_bench::timeline_args().apply(&mut cfg);
    cfg
}

/// One seed's verdict, rendered in seed order after the sweep.
struct SeedReport {
    seed: u64,
    line: String,
    failed: bool,
    repro_json: Option<String>,
    /// Flight-recorder dump of the original (unshrunk) failure: the last
    /// timeline windows plus the span-ring tail at the moment the oracle
    /// reported violations.
    flight_json: Option<String>,
}

fn sweep_seed(seed: u64, events: usize, total: usize, plant_bug: bool) -> SeedReport {
    let cfg = base_cfg(seed, total);
    let mut schedule = ChaosSchedule::generate(seed, events, 2);
    if plant_bug {
        // A corruption the checksum cannot see — exactly what the oracle
        // exists to catch.
        schedule.events.push(ChaosEvent {
            at: Dur::millis(8),
            action: ChaosAction::StealthCorrupt { host: 0 },
        });
        schedule.events.sort_by_key(|e| e.at);
    }
    let outcome = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
    if outcome.passed() {
        return SeedReport {
            seed,
            line: format!(
                "seed {seed:>5}  PASS  {} events applied, {} heals, {} deferred, {} in {}",
                outcome.chaos.events_applied,
                outcome.chaos.heals_applied,
                outcome.chaos.deferred_events,
                outcome.bytes_read,
                outcome.elapsed,
            ),
            failed: false,
            repro_json: None,
            flight_json: None,
        };
    }
    let first = outcome.violations[0].clone();
    let (events_left, runs, repro_json) =
        match shrink_failure(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET) {
            Some(r) => (r.schedule.events.len(), r.runs, Some(r.schedule.to_json())),
            None => (schedule.events.len(), 0, Some(schedule.to_json())),
        };
    SeedReport {
        seed,
        line: format!(
            "seed {seed:>5}  FAIL  {first}  (shrunk to {events_left} events in {runs} runs)"
        ),
        failed: true,
        repro_json,
        flight_json: outcome.flight_json,
    }
}

fn replay(path: &str, total: usize, stats: bool) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let schedule = match ChaosSchedule::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return 2;
        }
    };
    println!(
        "replaying {path} (seed {}):\n{}",
        schedule.seed,
        schedule.render()
    );
    let cfg = base_cfg(schedule.seed, total);
    let outcome = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
    if stats {
        print!("{}", outcome.stats.report());
    }
    if outcome.passed() {
        println!(
            "PASS: {} bytes in {}, {} chaos events applied",
            outcome.bytes_read, outcome.elapsed, outcome.chaos.events_applied
        );
        0
    } else {
        for v in &outcome.violations {
            println!("VIOLATION: {v}");
        }
        if let Some(flight) = &outcome.flight_json {
            let fpath = format!("flight_{}.json", schedule.seed);
            match std::fs::write(&fpath, flight) {
                Ok(()) => println!("flight recorder written to {fpath}"),
                Err(e) => eprintln!("cannot write {fpath}: {e}"),
            }
        }
        1
    }
}

fn main() {
    let smoke = flag_present("--smoke");
    let total = if smoke {
        2 * 1024 * 1024
    } else {
        8 * 1024 * 1024
    };

    if let Some(path) = arg_value("--replay") {
        std::process::exit(replay(&path, total, flag_present("--stats")));
    }

    let seeds = arg_value("--seeds")
        .map(|v| parse_num("--seeds", &v))
        .unwrap_or(if smoke { 8 } else { 32 });
    let start = arg_value("--start-seed")
        .map(|v| parse_num("--start-seed", &v))
        .unwrap_or(1);
    let events = arg_value("--events")
        .map(|v| parse_num("--events", &v) as usize)
        .unwrap_or(6);
    let out_dir = arg_value("--out").unwrap_or_else(|| ".".to_string());
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create --out dir {out_dir}: {e}");
        std::process::exit(2);
    }
    let plant_bug = flag_present("--plant-bug");

    println!(
        "== chaos sweep: {seeds} seeds from {start}, {events} events each, {} MB transfers{} ==",
        total / (1024 * 1024),
        if plant_bug { ", planted bug" } else { "" }
    );

    let seed_list: Vec<u64> = (start..start + seeds).collect();
    let reports = sweep::run_sweep("chaos", &seed_list, |&seed| {
        sweep_seed(seed, events, total, plant_bug)
    });

    let mut failures = 0u64;
    for r in &reports {
        println!("{}", r.line);
        if r.failed {
            failures += 1;
            if let Some(json) = &r.repro_json {
                let path = format!("{}/repro_{}.json", out_dir, r.seed);
                match std::fs::write(&path, json) {
                    Ok(()) => println!("          repro written to {path}"),
                    Err(e) => eprintln!("          cannot write {path}: {e}"),
                }
            }
            if let Some(flight) = &r.flight_json {
                let path = format!("{}/flight_{}.json", out_dir, r.seed);
                match std::fs::write(&path, flight) {
                    Ok(()) => println!("          flight recorder written to {path}"),
                    Err(e) => eprintln!("          cannot write {path}: {e}"),
                }
            }
        }
    }
    println!(
        "{}/{} seeds clean",
        reports.len() as u64 - failures,
        reports.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
