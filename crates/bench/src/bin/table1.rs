//! Table 1: the host-interface taxonomy — operations per (API semantics,
//! checksum location, adaptor architecture) cell, with the efficiency
//! class each cell falls into.

use outboard_bench::sweep::run_sweep;
use outboard_taxonomy::*;

fn main() {
    println!("== Table 1: host interface taxonomy (transmit operations) ==\n");
    println!("{}", render_table());
    println!("\nclassification:");
    // Each cell classifies independently; render the sweep's ordered lines.
    let cells: Vec<_> = table_rows()
        .into_iter()
        .flat_map(|(api, csum)| adaptor_columns().into_iter().map(move |a| (api, csum, a)))
        .collect();
    let lines = run_sweep("table1-cells", &cells, |&(api, csum, a)| {
        let ops = transmit_ops(api, csum, a);
        let cls = classify(&ops);
        let ops_s: Vec<String> = ops.iter().map(|o| o.to_string()).collect();
        format!(
            "  {:?}/{:?} + {:?}/{:?}: {:24} -> {} ({} CPU accesses/byte)",
            api,
            csum,
            a.buffering,
            a.mover,
            ops_s.join(" "),
            cls,
            cell_cpu_accesses(api, csum, a)
        )
    });
    for line in lines {
        println!("{line}");
    }
    println!("\nThe paper's focus cell — Copy/Header over Outboard/DMA+C (sockets");
    println!("over the CAB) — is single-copy with zero CPU data accesses.");
    outboard_bench::emit_trace(&outboard_host::MachineConfig::alpha_3000_400());
}
