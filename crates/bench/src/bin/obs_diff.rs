//! `obs-diff`: compare two observability artifacts metric-by-metric.
//!
//! Accepts the workspace's hand-rolled JSON formats — `stats_*.json`
//! (a [`MetricsRegistry`](outboard_sim::MetricsRegistry) snapshot) or
//! `timeline_*.json` (`outboard-timeline-v1`) — flattens each into scalar
//! facets (`name`, `name.hwm`, `series.sum`, …), and prints per-metric
//! absolute and percent deltas.
//!
//! ```text
//! obs_diff A.json B.json [--threshold-pct P] [--threshold-abs N] [--all]
//! ```
//!
//! * `--threshold-pct P`  tolerated relative delta per metric, percent
//!   (default 0: any difference fails)
//! * `--threshold-abs N`  tolerated absolute delta per metric (default 0)
//! * `--all`              print matching metrics too, not just differences
//!
//! A metric fails when its delta exceeds *both* thresholds; a metric
//! present in only one file always fails. Exit status: 0 within
//! thresholds, 1 differences exceed thresholds, 2 usage/parse error.
//! CI uses the zero-threshold mode to prove serial and `--jobs 4` sweeps
//! publish byte-identical registries.

use outboard_sim::chaos::json::{self, Value};
use std::collections::BTreeMap;

fn usage() -> ! {
    eprintln!("usage: obs_diff A.json B.json [--threshold-pct P] [--threshold-abs N] [--all]");
    std::process::exit(2);
}

/// Flatten one parsed artifact into `facet name -> value` (both formats).
fn flatten(doc: &Value, path: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(obj) = doc.as_object() else {
        eprintln!("{path}: top level is not a JSON object");
        std::process::exit(2);
    };
    if let Some(schema) = json::get(obj, "schema").and_then(|v| v.as_str()) {
        if schema != "outboard-timeline-v1" {
            eprintln!("{path}: unknown schema {schema:?}");
            std::process::exit(2);
        }
        flatten_timeline(obj, path, &mut out);
    } else if json::get(obj, "metrics").is_some() {
        flatten_stats(obj, path, &mut out);
    } else {
        eprintln!("{path}: neither a stats snapshot nor a timeline");
        std::process::exit(2);
    }
    out
}

fn flatten_stats(obj: &[(String, Value)], path: &str, out: &mut BTreeMap<String, f64>) {
    if let Some(v) = json::get(obj, "elapsed_ns").and_then(|v| v.as_f64()) {
        out.insert("elapsed_ns".to_string(), v);
    }
    let Some(metrics) = json::get(obj, "metrics").and_then(|v| v.as_object()) else {
        eprintln!("{path}: \"metrics\" is not an object");
        std::process::exit(2);
    };
    for (name, m) in metrics {
        let Some(fields) = m.as_object() else {
            continue;
        };
        for (k, v) in fields {
            if k == "type" {
                continue;
            }
            let Some(x) = v.as_f64() else { continue };
            let facet = if k == "value" {
                name.clone()
            } else {
                format!("{name}.{k}")
            };
            out.insert(facet, x);
        }
    }
}

fn flatten_timeline(obj: &[(String, Value)], path: &str, out: &mut BTreeMap<String, f64>) {
    for key in [
        "window_ns",
        "windows",
        "evicted",
        "first_retained",
        "end_ns",
    ] {
        if let Some(v) = json::get(obj, key).and_then(|v| v.as_f64()) {
            out.insert(format!("timeline.{key}"), v);
        }
    }
    let Some(series) = json::get(obj, "series").and_then(|v| v.as_array()) else {
        eprintln!("{path}: \"series\" is not an array");
        std::process::exit(2);
    };
    for s in series {
        let Some(fields) = s.as_object() else {
            continue;
        };
        let Some(name) = json::get(fields, "name").and_then(|v| v.as_str()) else {
            continue;
        };
        for key in ["base", "final", "sum", "hwm"] {
            if let Some(v) = json::get(fields, key).and_then(|v| v.as_f64()) {
                out.insert(format!("{name}.{key}"), v);
            }
        }
        if let Some(samples) = json::get(fields, "samples").and_then(|v| v.as_array()) {
            out.insert(format!("{name}.samples"), samples.len() as f64);
        }
    }
}

fn load(path: &str) -> BTreeMap<String, f64> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        }
    };
    flatten(&doc, path)
}

fn arg_f64(argv: &[String], name: &str) -> Option<f64> {
    let mut i = 0;
    while i < argv.len() {
        let (flag, inline) = match argv[i].split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (argv[i].as_str(), None),
        };
        if flag == name {
            let val = inline.unwrap_or_else(|| argv.get(i + 1).cloned().unwrap_or_default());
            match val.parse::<f64>() {
                Ok(x) if x >= 0.0 && x.is_finite() => return Some(x),
                _ => {
                    eprintln!("{name} needs a non-negative number, got {val:?}");
                    std::process::exit(2);
                }
            }
        }
        i += 1;
    }
    None
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // Positional file arguments, skipping flags and their values.
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        if a == "--threshold-pct" || a == "--threshold-abs" {
            i += 2;
            continue;
        }
        if a.starts_with("--") {
            i += 1;
            continue;
        }
        paths.push(a.clone());
        i += 1;
    }
    if paths.len() != 2 {
        usage();
    }
    let pct_limit = arg_f64(&argv, "--threshold-pct").unwrap_or(0.0);
    let abs_limit = arg_f64(&argv, "--threshold-abs").unwrap_or(0.0);
    let show_all = argv.iter().any(|a| a == "--all");

    let a = load(&paths[0]);
    let b = load(&paths[1]);

    let mut keys: Vec<&String> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();

    println!(
        "{:<44} {:>16} {:>16} {:>14} {:>9}",
        "metric", "a", "b", "delta", "pct"
    );
    let mut failures = 0u64;
    let mut compared = 0u64;
    for key in keys {
        match (a.get(key), b.get(key)) {
            (Some(&va), Some(&vb)) => {
                compared += 1;
                let delta = vb - va;
                let denom = va.abs().max(vb.abs());
                let pct = if delta == 0.0 {
                    0.0
                } else if denom > 0.0 {
                    delta.abs() / denom * 100.0
                } else {
                    100.0
                };
                let exceeds = delta.abs() > abs_limit && pct > pct_limit;
                if exceeds {
                    failures += 1;
                }
                if show_all || delta != 0.0 {
                    println!(
                        "{:<44} {:>16} {:>16} {:>+14} {:>8.3}%{}",
                        key,
                        va,
                        vb,
                        delta,
                        pct,
                        if exceeds { "  EXCEEDS" } else { "" }
                    );
                }
            }
            (Some(&va), None) => {
                failures += 1;
                println!(
                    "{key:<44} {va:>16} {:>16} {:>14} {:>9}  ONLY-A",
                    "-", "-", "-"
                );
            }
            (None, Some(&vb)) => {
                failures += 1;
                println!(
                    "{key:<44} {:>16} {vb:>16} {:>14} {:>9}  ONLY-B",
                    "-", "-", "-"
                );
            }
            (None, None) => unreachable!(),
        }
    }
    println!(
        "{compared} metrics compared, {failures} outside thresholds \
         (abs > {abs_limit}, pct > {pct_limit}%)"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
