//! Table 2: cost of virtual memory operations as a function of the number
//! of pages. The simulated VM system is timed for n = 1..64 pages and a
//! least-squares fit recovers the linear model; the coefficients are then
//! compared with the paper's (which are also the model inputs — this
//! binary demonstrates the measurement pipeline is faithful end to end).

use outboard_bench::sweep::run_sweep;
use outboard_host::{MachineConfig, TaskId, VmSystem};
use outboard_sim::stats::linreg;

fn main() {
    let machine = MachineConfig::alpha_3000_400();
    println!("== Table 2: VM operation cost (us) as a function of pages n ==\n");
    let ns: Vec<f64> = (1..=64).map(|n| n as f64).collect();
    // Each page count measures independently (its own VmSystem); sweep the
    // points and unzip in order.
    let costs = run_sweep("table2-vm-costs", &ns, |&nf| {
        let mut vm = VmSystem::new(machine.clone(), false);
        let n = nf as usize;
        let len = n * machine.page_size;
        // prepare = pin + map in one call; measure the pieces separately
        // through the cost functions the same call path uses.
        let pin = vm.pin_cost(n).as_micros_f64();
        let map = vm.map_cost(n).as_micros_f64();
        let unpin = vm.unpin_cost(n).as_micros_f64();
        // Cross-check against the full prepare/release path.
        let prep = vm.prepare(TaskId(1), 0, len).as_micros_f64();
        let rel = vm.release(TaskId(1), 0, len).as_micros_f64();
        assert!((prep - (pin + map)).abs() < 1e-6);
        assert!((rel - unpin).abs() < 1e-6);
        (pin, unpin, map)
    });
    let pin_y: Vec<f64> = costs.iter().map(|c| c.0).collect();
    let unpin_y: Vec<f64> = costs.iter().map(|c| c.1).collect();
    let map_y: Vec<f64> = costs.iter().map(|c| c.2).collect();
    let rows = [
        ("Pin", linreg(&ns, &pin_y), (35.0, 29.0)),
        ("Unpin", linreg(&ns, &unpin_y), (48.0, 3.9)),
        ("Map", linreg(&ns, &map_y), (6.0, 4.5)),
    ];
    println!(
        "{:>9} | {:>22} | {:>22} | {:>6}",
        "Operation", "measured (us)", "paper Table 2 (us)", "r^2"
    );
    for (name, fit, (b, m)) in rows {
        println!(
            "{:>9} | {:>9.1} + {:>5.1} * n | {:>9.1} + {:>5.1} * n | {:>6.4}",
            name, fit.intercept, fit.slope, b, m, fit.r2
        );
        assert!((fit.intercept - b).abs() < 0.2 && (fit.slope - m).abs() < 0.05);
    }
    println!("\nLazy-unpin ablation (32 KB buffer reused 64 times):");
    for lazy in [false, true] {
        let mut vm = VmSystem::new(machine.clone(), lazy);
        let mut total = 0.0;
        for _ in 0..64 {
            total += vm.prepare(TaskId(1), 0, 32 * 1024).as_micros_f64();
            total += vm.release(TaskId(1), 0, 32 * 1024).as_micros_f64();
        }
        println!("  lazy={lazy}: {:8.1} us total VM time", total);
    }
    outboard_bench::emit_trace(&machine);
}
