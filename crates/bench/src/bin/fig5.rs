//! Figure 5: throughput, utilization and efficiency as a function of
//! read/write size on the Alpha 3000/400.

use outboard_host::MachineConfig;

fn main() {
    println!("== Figure 5: Alpha 3000/400, TCP over CAB, 512 KB window, 32 KB MTU ==\n");
    outboard_bench::print_figure(&MachineConfig::alpha_3000_400());
    println!("paper anchors: modified ~3x more efficient for large writes;");
    println!("efficiency crossover near 8-16 KB; raw HIPPI ~140 Mbit/s;");
    println!("similar throughput for both stacks at large sizes.");
    if outboard_bench::stats_requested() {
        outboard_bench::emit_stats("fig5", &MachineConfig::alpha_3000_400());
    }
    outboard_bench::emit_trace(&MachineConfig::alpha_3000_400());
}
