//! §2.1: FIFO head-of-line blocking vs logical channels on a saturated
//! input-queued switch (the Hluchyj-Karol 58.6 % limit).
//!
//! All three studies sweep independent simulations through the shared
//! `--jobs`/`OUTBOARD_JOBS` worker pool; rendering order is fixed.

use outboard_bench::sweep::run_sweep;
use outboard_cab::{HolSim, MacMode};

fn main() {
    println!("== HOL blocking: saturated uniform random traffic ==\n");
    println!("{:>6} {:>10} {:>12}", "nodes", "FIFO", "16 channels");
    let node_counts = [4usize, 8, 16, 32];
    let node_runs = run_sweep("hol-nodes", &node_counts, |&nodes| {
        let fifo = HolSim::new(nodes, MacMode::Fifo, 42).run(20_000);
        let lc = HolSim::new(nodes, MacMode::LogicalChannels { channels: 16 }, 42).run(20_000);
        (fifo, lc)
    });
    for (nodes, (fifo, lc)) in node_counts.iter().zip(&node_runs) {
        println!(
            "{:>6} {:>9.1}% {:>11.1}%",
            nodes,
            fifo.utilization * 100.0,
            lc.utilization * 100.0
        );
    }
    println!("\nchannel sweep at 16 nodes:");
    let channels = [1usize, 2, 4, 8, 16];
    let channel_runs = run_sweep("hol-channels", &channels, |&ch| {
        HolSim::new(16, MacMode::LogicalChannels { channels: ch }, 7).run(20_000)
    });
    for (ch, r) in channels.iter().zip(&channel_runs) {
        println!("  {ch:>2} channels: {:5.1}%", r.utilization * 100.0);
    }
    println!("\nfinite-load stability at 16 nodes (mean backlog after 20k slots):");
    println!("{:>6} {:>12} {:>14}", "load", "FIFO", "16 channels");
    let loads = [0.40, 0.50, 0.55, 0.60, 0.70, 0.80];
    let load_runs = run_sweep("hol-loads", &loads, |&load| {
        let f = HolSim::new(16, MacMode::Fifo, 5).run_with_load(20_000, load);
        let l = HolSim::new(16, MacMode::LogicalChannels { channels: 16 }, 5)
            .run_with_load(20_000, load);
        (f, l)
    });
    for (load, (f, l)) in loads.iter().zip(&load_runs) {
        println!(
            "{:>6.2} {:>12.1} {:>14.1}",
            load, f.mean_backlog, l.mean_backlog
        );
    }
    println!("\npaper/Hluchyj-Karol anchor: FIFO caps near 58.6 %; queues blow");
    println!("up just past it while logical channels stay stable.");
    outboard_bench::emit_trace(&outboard_host::MachineConfig::alpha_3000_400());
}
