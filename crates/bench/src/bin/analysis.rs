//! §7.3: analytic efficiency estimates vs full-simulation measurements.

use outboard_bench::figure_point;
use outboard_bench::sweep::run_sweep;
use outboard_host::MachineConfig;
use outboard_testbed::analysis::{
    per_packet_overhead_us, single_copy_estimate, unmodified_estimate,
};

fn main() {
    let m = MachineConfig::alpha_3000_400();
    println!("== Section 7.3 analysis, Alpha 3000/400, 32 KB packets ==\n");
    println!(
        "per-packet protocol overhead: {:.0} us (paper: ~300 us)\n",
        per_packet_overhead_us(&m)
    );
    let un = unmodified_estimate(&m, 32 * 1024);
    let sc = single_copy_estimate(&m, 32 * 1024);
    println!("analytic:");
    println!(
        "  unmodified : {:6.0} Mbit/s  per-byte share {:4.0} %  (paper: ~180, 80 %)",
        un.efficiency_mbps,
        un.per_byte_share * 100.0
    );
    println!(
        "  single-copy: {:6.0} Mbit/s  per-byte share {:4.0} %  (paper: ~490, 43 %)",
        sc.efficiency_mbps,
        sc.per_byte_share * 100.0
    );
    println!(
        "  ratio      : {:6.2}x                         (paper: 'almost three times')",
        sc.efficiency_mbps / un.efficiency_mbps
    );
    println!("\nsimulated (512 KB writes, 32 KB MTU):");
    let sims = run_sweep("analysis", &[false, true], |&sc| {
        figure_point(&m, sc, 512 * 1024)
    });
    let (mu, ms) = (&sims[0], &sims[1]);
    println!(
        "  unmodified : {:6.0} Mbit/s at {:4.2} utilization",
        mu.sender_efficiency_mbps, mu.sender_utilization
    );
    println!(
        "  single-copy: {:6.0} Mbit/s at {:4.2} utilization",
        ms.sender_efficiency_mbps, ms.sender_utilization
    );
    println!(
        "  ratio      : {:6.2}x",
        ms.sender_efficiency_mbps / mu.sender_efficiency_mbps
    );
    outboard_bench::emit_trace(&m);
}
