//! Wall-clock benchmark harness: times representative simulator workloads
//! and writes `BENCH_perf.json` so every PR extends a measured perf
//! trajectory instead of guessing.
//!
//! Workloads:
//!
//! 1. `tcp_large_window` — one single-copy large-window transfer;
//! 2. `fault_soak` — the fault-matrix soak configuration (drops, bit
//!    corruption, duplication, adaptor alloc failures);
//! 3. `fig5_sweep_serial` / `fig5_sweep_parallel` — the Figure 5 sweep
//!    with `--jobs 1` vs the configured worker count, verifying the
//!    parallel results are **identical** to serial (exit 1 on mismatch —
//!    CI's determinism gate);
//! 4. `checksum_wide` / `checksum_scalar` — ones-complement checksum
//!    MB/s through the 8-byte-lane path vs the 16-bit reference path,
//!    via the vendored criterion stand-in's measurement loop.
//!
//! `--smoke` shrinks every workload for CI; `--jobs N`/`OUTBOARD_JOBS`
//! picks the parallel worker count.

use outboard_bench::sweep;
use outboard_host::MachineConfig;
use outboard_stack::StackConfig;
use outboard_testbed::{run_ttcp, ExperimentConfig, Metrics};
use outboard_wire::checksum::Accumulator;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured workload: a name plus (field, value) pairs for the JSON.
struct Workload {
    name: &'static str,
    fields: Vec<(&'static str, f64)>,
}

fn experiment(
    machine: &MachineConfig,
    single_copy: bool,
    write_size: usize,
    total: usize,
) -> ExperimentConfig {
    let stack = if single_copy {
        let mut s = StackConfig::single_copy();
        s.force_single_copy = true;
        s
    } else {
        StackConfig::unmodified()
    };
    let mut cfg = ExperimentConfig::new(machine.clone(), stack, write_size);
    cfg.total_bytes = total;
    cfg.verify = false;
    cfg
}

/// Time one `run_ttcp` and convert it to a workload entry.
fn timed_run(name: &'static str, cfg: &ExperimentConfig) -> (Workload, Metrics) {
    let t0 = Instant::now();
    let m = run_ttcp(cfg);
    let wall_us = t0.elapsed().as_micros() as f64;
    let secs = wall_us / 1e6;
    let events_per_sec = if secs > 0.0 {
        m.events_dispatched as f64 / secs
    } else {
        0.0
    };
    (
        Workload {
            name,
            fields: vec![
                ("wall_us", wall_us),
                ("events", m.events_dispatched as f64),
                ("events_per_sec", events_per_sec),
                ("sim_mbps", m.throughput_mbps),
                ("completed", if m.completed { 1.0 } else { 0.0 }),
            ],
        },
        m,
    )
}

/// Canonical rendering of a run's results for the serial-vs-parallel
/// equality check: every Metrics field plus the full stats registry JSON.
fn canon(m: &Metrics) -> String {
    format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}|{}|{}|{}|{}",
        m.completed,
        m.elapsed,
        m.bytes,
        m.throughput_mbps,
        m.sender_utilization,
        m.receiver_utilization,
        m.sender_efficiency_mbps,
        m.receiver_efficiency_mbps,
        m.retransmits,
        m.verify_errors,
        m.writes,
        m.header_only_retransmits,
        m.hw_checksums,
        m.sw_checksums,
        m.events_dispatched,
        m.stats.to_json()
    )
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let jobs = sweep::jobs();
    let machine = MachineConfig::alpha_3000_400();
    let mut workloads: Vec<Workload> = Vec::new();
    let mut determinism_ok = true;

    // 1. Single large-window TCP run.
    let total = if smoke { 1024 * 1024 } else { 8 * 1024 * 1024 };
    let cfg = experiment(&machine, true, 256 * 1024, total);
    let (w, _) = timed_run("tcp_large_window", &cfg);
    workloads.push(w);

    // 1b. Tracing overhead: the identical run with span tracing enabled
    // but the trace never rendered (enabled-but-unused) vs the untraced
    // baseline. Recording you never read must stay cheap; min-of-3 with an
    // absolute floor so scheduler noise on fast smoke runs cannot trip the
    // gate.
    let min3_us = |cfg: &ExperimentConfig| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                criterion::black_box(run_ttcp(cfg));
                t0.elapsed().as_micros() as f64
            })
            .fold(f64::INFINITY, f64::min)
    };
    let untraced_us = min3_us(&cfg);
    let mut traced_cfg = cfg.clone();
    traced_cfg.trace_spans = true;
    traced_cfg.trace_export = false;
    let traced_us = min3_us(&traced_cfg);
    let overhead_pct = (traced_us - untraced_us) / untraced_us.max(1.0) * 100.0;
    let trace_overhead_ok = overhead_pct <= 2.0 || (traced_us - untraced_us) < 2_000.0;
    workloads.push(Workload {
        name: "trace_overhead",
        fields: vec![
            ("untraced_us", untraced_us),
            ("traced_us", traced_us),
            ("overhead_pct", overhead_pct),
            ("within_budget", if trace_overhead_ok { 1.0 } else { 0.0 }),
        ],
    });

    // 2. Fault-matrix soak configuration.
    let total = if smoke { 1024 * 1024 } else { 4 * 1024 * 1024 };
    let mut cfg = experiment(&machine, true, 64 * 1024, total);
    cfg.drop_p = 0.05;
    cfg.corrupt_p = 0.01;
    cfg.dup_p = 0.01;
    cfg.cab_alloc_fail_p = 0.05;
    let (w, _) = timed_run("fault_soak", &cfg);
    workloads.push(w);

    // 3. Figure-5-style sweep, serial vs parallel, with a byte-equality
    // check over every run's metrics and stats registry.
    let sizes: Vec<usize> = if smoke {
        vec![1024, 4096]
    } else {
        outboard_bench::figure_sizes()
    };
    let items: Vec<(usize, bool)> = sizes
        .iter()
        .flat_map(|&s| [(s, false), (s, true)])
        .collect();
    let point = |&(size, sc): &(usize, bool)| {
        let total = if smoke {
            256 * 1024
        } else {
            outboard_bench::total_for(size)
        };
        run_ttcp(&experiment(&machine, sc, size, total))
    };
    let t0 = Instant::now();
    let serial = sweep::run_sweep_jobs("perf-fig5-serial", 1, &items, point);
    let serial_us = t0.elapsed().as_micros() as f64;
    let t0 = Instant::now();
    let parallel = sweep::run_sweep_jobs("perf-fig5-parallel", jobs, &items, point);
    let parallel_us = t0.elapsed().as_micros() as f64;
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        if canon(s) != canon(p) {
            let (size, sc) = items[i];
            eprintln!(
                "DETERMINISM FAILURE: sweep item {i} (size {size}, single_copy {sc}) \
                 differs between --jobs 1 and --jobs {jobs}"
            );
            determinism_ok = false;
        }
    }
    let events: u64 = serial.iter().map(|m| m.events_dispatched).sum();
    workloads.push(Workload {
        name: "fig5_sweep_serial",
        fields: vec![
            ("wall_us", serial_us),
            ("events", events as f64),
            (
                "events_per_sec",
                events as f64 / (serial_us / 1e6).max(1e-9),
            ),
            ("runs", items.len() as f64),
        ],
    });
    workloads.push(Workload {
        name: "fig5_sweep_parallel",
        fields: vec![
            ("wall_us", parallel_us),
            ("jobs", jobs as f64),
            ("runs", items.len() as f64),
            ("speedup_vs_serial", serial_us / parallel_us.max(1.0)),
            ("matches_serial", if determinism_ok { 1.0 } else { 0.0 }),
        ],
    });

    // 4. Checksum throughput: wide 8-byte lanes vs the scalar reference,
    // measured with the vendored criterion stand-in.
    let buf_len = if smoke { 256 * 1024 } else { 4 * 1024 * 1024 };
    let buf: Vec<u8> = (0..buf_len).map(|i| (i * 31 + 7) as u8).collect();
    let iters = if smoke { 20 } else { 50 };
    let wide = criterion::measure_ns(iters, || {
        let mut acc = Accumulator::new();
        acc.add_bytes(criterion::black_box(&buf));
        criterion::black_box(acc.partial());
    });
    let scalar = criterion::measure_ns(iters, || {
        let mut acc = Accumulator::new();
        acc.add_bytes_scalar(criterion::black_box(&buf));
        criterion::black_box(acc.partial());
    });
    let wide_mbps = wide.mb_per_sec(buf_len as u64);
    let scalar_mbps = scalar.mb_per_sec(buf_len as u64);
    workloads.push(Workload {
        name: "checksum_wide",
        fields: vec![
            ("wall_us", wide.per_iter_ns * wide.iters as f64 / 1e3),
            ("mb_per_sec", wide_mbps),
            ("bytes_per_iter", buf_len as f64),
            ("speedup_vs_scalar", wide_mbps / scalar_mbps.max(1e-9)),
        ],
    });
    workloads.push(Workload {
        name: "checksum_scalar",
        fields: vec![
            ("wall_us", scalar.per_iter_ns * scalar.iters as f64 / 1e3),
            ("mb_per_sec", scalar_mbps),
            ("bytes_per_iter", buf_len as f64),
        ],
    });

    // Render BENCH_perf.json (hand-rolled: the workspace has no serde).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"outboard-perf-v1\",");
    let _ = writeln!(json, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, w) in workloads.iter().enumerate() {
        let _ = write!(json, "    {{ \"name\": \"{}\"", w.name);
        for (k, v) in &w.fields {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(json, ", \"{k}\": {}", *v as i64);
            } else {
                let _ = write!(json, ", \"{k}\": {v:.3}");
            }
        }
        let _ = writeln!(
            json,
            " }}{}",
            if i + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_perf.json", &json) {
        Ok(()) => println!("wrote BENCH_perf.json ({} workloads)", workloads.len()),
        Err(e) => {
            eprintln!("failed to write BENCH_perf.json: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
    for w in &workloads {
        let wall = w
            .fields
            .iter()
            .find(|(k, _)| *k == "wall_us")
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        eprintln!("perf {:<22} {:>10.0} us", w.name, wall);
    }
    if !determinism_ok {
        eprintln!("perf: parallel sweep output DIFFERS from serial — failing");
        std::process::exit(1);
    }
    if !trace_overhead_ok {
        eprintln!(
            "perf: span tracing costs {overhead_pct:.1}% wall-clock on \
             tcp_large_window (budget: 2%) — failing"
        );
        std::process::exit(1);
    }
}
