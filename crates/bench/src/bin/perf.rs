//! Wall-clock benchmark harness: times representative simulator workloads
//! and writes `BENCH_perf.json` so every PR extends a measured perf
//! trajectory instead of guessing.
//!
//! Workloads:
//!
//! 1. `tcp_large_window` — one single-copy large-window transfer;
//! 2. `fault_soak` — the fault-matrix soak configuration (drops, bit
//!    corruption, duplication, adaptor alloc failures);
//! 3. `fig5_sweep_serial` / `fig5_sweep_parallel` — the Figure 5 sweep
//!    with `--jobs 1` vs the configured worker count, verifying the
//!    parallel results are **identical** to serial (exit 1 on mismatch —
//!    CI's determinism gate);
//! 4. `sched_churn` — pure schedule/expire churn through the event
//!    engines: events/sec for the reference heap vs the timing wheel on a
//!    timer-heavy pending set (the wheel must win by ≥ 2x);
//! 5. `macro_sweep` — the fig5-shaped end-to-end sweep run serially on
//!    each engine, reporting events/sec and wall µs (the wheel must be no
//!    worse end to end);
//! 6. `checksum_wide` / `checksum_scalar` — ones-complement checksum
//!    MB/s through the 8-byte-lane path vs the 16-bit reference path,
//!    via the vendored criterion stand-in's measurement loop. The
//!    wide-over-scalar speedup is a regression gate: below 4x the binary
//!    exits 1 so scheduler work can't silently regress the checksum
//!    pillar.
//!
//! `--smoke` shrinks every workload for CI; `--jobs N`/`OUTBOARD_JOBS`
//! picks the parallel worker count (default: `min(4, cores)`, so the
//! committed smoke numbers measure real parallelism).

use outboard_bench::sweep;
use outboard_host::MachineConfig;
use outboard_sim::{EngineKind, EventEngine, Time};
use outboard_stack::StackConfig;
use outboard_testbed::{run_ttcp, ExperimentConfig, Metrics};
use outboard_wire::checksum::Accumulator;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured workload: a name plus (field, value) pairs for the JSON.
struct Workload {
    name: &'static str,
    fields: Vec<(&'static str, f64)>,
}

fn experiment(
    machine: &MachineConfig,
    single_copy: bool,
    write_size: usize,
    total: usize,
) -> ExperimentConfig {
    let stack = if single_copy {
        let mut s = StackConfig::single_copy();
        s.force_single_copy = true;
        s
    } else {
        StackConfig::unmodified()
    };
    let mut cfg = ExperimentConfig::new(machine.clone(), stack, write_size);
    cfg.total_bytes = total;
    cfg.verify = false;
    cfg
}

/// Time one `run_ttcp` and convert it to a workload entry.
fn timed_run(name: &'static str, cfg: &ExperimentConfig) -> (Workload, Metrics) {
    let t0 = Instant::now();
    let m = run_ttcp(cfg);
    let wall_us = t0.elapsed().as_micros() as f64;
    let secs = wall_us / 1e6;
    let events_per_sec = if secs > 0.0 {
        m.events_dispatched as f64 / secs
    } else {
        0.0
    };
    (
        Workload {
            name,
            fields: vec![
                ("wall_us", wall_us),
                ("events", m.events_dispatched as f64),
                ("events_per_sec", events_per_sec),
                ("sim_mbps", m.throughput_mbps),
                ("completed", if m.completed { 1.0 } else { 0.0 }),
            ],
        },
        m,
    )
}

/// Canonical rendering of a run's results for the serial-vs-parallel
/// equality check: every Metrics field plus the full stats registry JSON.
fn canon(m: &Metrics) -> String {
    format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}|{}|{}|{}|{}",
        m.completed,
        m.elapsed,
        m.bytes,
        m.throughput_mbps,
        m.sender_utilization,
        m.receiver_utilization,
        m.sender_efficiency_mbps,
        m.receiver_efficiency_mbps,
        m.retransmits,
        m.verify_errors,
        m.writes,
        m.header_only_retransmits,
        m.hw_checksums,
        m.sw_checksums,
        m.events_dispatched,
        m.stats.to_json()
    )
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Pop/push churn through one engine: `pending` events in flight, each pop
/// rescheduling a TCP-timer-like successor. Returns events (pops) per
/// second of wall time.
fn sched_churn(kind: EngineKind, pending: usize, churns: usize) -> f64 {
    let mut eng: EventEngine<u64> = EventEngine::new(kind);
    // Deterministic xorshift so both engines see the same schedule shape.
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for i in 0..pending {
        eng.push(Time(1 + next() % 5_000_000), i as u64);
    }
    let t0 = Instant::now();
    for _ in 0..churns {
        let (now, ev) = eng.pop().expect("pending set never drains");
        // Reschedule like a retransmit timer: near future, ns granularity.
        eng.push(now + outboard_sim::Dur(1 + next() % 5_000_000), ev);
    }
    let secs = t0.elapsed().as_secs_f64();
    criterion::black_box(eng.len());
    churns as f64 / secs.max(1e-9)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let jobs = sweep::jobs_capped(4);
    let machine = MachineConfig::alpha_3000_400();
    let mut workloads: Vec<Workload> = Vec::new();
    let mut determinism_ok = true;

    // 1. Single large-window TCP run.
    let total = if smoke { 1024 * 1024 } else { 8 * 1024 * 1024 };
    let cfg = experiment(&machine, true, 256 * 1024, total);
    let (w, _) = timed_run("tcp_large_window", &cfg);
    workloads.push(w);

    // 1b. Tracing overhead: the identical run with span tracing enabled
    // but the trace never rendered (enabled-but-unused) vs the untraced
    // baseline. Recording you never read must stay cheap; min-of-3 with an
    // absolute floor so scheduler noise on fast smoke runs cannot trip the
    // gate.
    let min3_us = |cfg: &ExperimentConfig| {
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                criterion::black_box(run_ttcp(cfg));
                t0.elapsed().as_micros() as f64
            })
            .fold(f64::INFINITY, f64::min)
    };
    let untraced_us = min3_us(&cfg);
    let mut traced_cfg = cfg.clone();
    traced_cfg.trace_spans = true;
    traced_cfg.trace_export = false;
    let traced_us = min3_us(&traced_cfg);
    let overhead_pct = (traced_us - untraced_us) / untraced_us.max(1.0) * 100.0;
    let trace_overhead_ok = overhead_pct <= 2.0 || (traced_us - untraced_us) < 2_000.0;
    workloads.push(Workload {
        name: "trace_overhead",
        fields: vec![
            ("untraced_us", untraced_us),
            ("traced_us", traced_us),
            ("overhead_pct", overhead_pct),
            ("within_budget", if trace_overhead_ok { 1.0 } else { 0.0 }),
        ],
    });

    // 1c. Timeline overhead, mirroring 1b: the identical run with windowed
    // sampling enabled but nothing exported vs the unsampled baseline.
    // Boundary sampling reads a handful of integers per virtual
    // millisecond; recording you never read must stay cheap.
    let mut sampled_cfg = cfg.clone();
    sampled_cfg.timeline_enabled = true;
    sampled_cfg.timeline_export = false;
    let sampled_us = min3_us(&sampled_cfg);
    let timeline_pct = (sampled_us - untraced_us) / untraced_us.max(1.0) * 100.0;
    let timeline_overhead_ok = timeline_pct <= 2.0 || (sampled_us - untraced_us) < 2_000.0;
    workloads.push(Workload {
        name: "timeline_overhead",
        fields: vec![
            ("unsampled_us", untraced_us),
            ("sampled_us", sampled_us),
            ("overhead_pct", timeline_pct),
            (
                "within_budget",
                if timeline_overhead_ok { 1.0 } else { 0.0 },
            ),
        ],
    });

    // 2. Fault-matrix soak configuration.
    let total = if smoke { 1024 * 1024 } else { 4 * 1024 * 1024 };
    let mut cfg = experiment(&machine, true, 64 * 1024, total);
    cfg.drop_p = 0.05;
    cfg.corrupt_p = 0.01;
    cfg.dup_p = 0.01;
    cfg.cab_alloc_fail_p = 0.05;
    let (w, _) = timed_run("fault_soak", &cfg);
    workloads.push(w);

    // 3. Figure-5-style sweep, serial vs parallel, with a byte-equality
    // check over every run's metrics and stats registry.
    let sizes: Vec<usize> = if smoke {
        vec![1024, 4096]
    } else {
        outboard_bench::figure_sizes()
    };
    let items: Vec<(usize, bool)> = sizes
        .iter()
        .flat_map(|&s| [(s, false), (s, true)])
        .collect();
    let point = |&(size, sc): &(usize, bool)| {
        let total = if smoke {
            256 * 1024
        } else {
            outboard_bench::total_for(size)
        };
        run_ttcp(&experiment(&machine, sc, size, total))
    };
    let t0 = Instant::now();
    let serial = sweep::run_sweep_jobs("perf-fig5-serial", 1, &items, point);
    let serial_us = t0.elapsed().as_micros() as f64;
    let t0 = Instant::now();
    let parallel = sweep::run_sweep_jobs("perf-fig5-parallel", jobs, &items, point);
    let parallel_us = t0.elapsed().as_micros() as f64;
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        if canon(s) != canon(p) {
            let (size, sc) = items[i];
            eprintln!(
                "DETERMINISM FAILURE: sweep item {i} (size {size}, single_copy {sc}) \
                 differs between --jobs 1 and --jobs {jobs}"
            );
            determinism_ok = false;
        }
    }
    let events: u64 = serial.iter().map(|m| m.events_dispatched).sum();
    workloads.push(Workload {
        name: "fig5_sweep_serial",
        fields: vec![
            ("wall_us", serial_us),
            ("jobs", 1.0),
            ("events", events as f64),
            (
                "events_per_sec",
                events as f64 / (serial_us / 1e6).max(1e-9),
            ),
            ("runs", items.len() as f64),
        ],
    });
    workloads.push(Workload {
        name: "fig5_sweep_parallel",
        fields: vec![
            ("wall_us", parallel_us),
            ("jobs", jobs as f64),
            ("runs", items.len() as f64),
            ("speedup_vs_serial", serial_us / parallel_us.max(1.0)),
            ("matches_serial", if determinism_ok { 1.0 } else { 0.0 }),
        ],
    });

    // 4. Scheduler churn: pure push/pop through the two event engines on a
    // timer-heavy pending set. The heap pays O(log n) per op at this depth;
    // the wheel is amortized O(1) and must win by >= 2x.
    let (pending, churns) = if smoke {
        (50_000, 200_000)
    } else {
        (100_000, 1_000_000)
    };
    // Warm up the allocator so neither engine pays first-touch costs.
    sched_churn(EngineKind::Heap, 1000, 1000);
    sched_churn(EngineKind::Wheel, 1000, 1000);
    let heap_eps = sched_churn(EngineKind::Heap, pending, churns);
    let wheel_eps = sched_churn(EngineKind::Wheel, pending, churns);
    workloads.push(Workload {
        name: "sched_churn",
        fields: vec![
            ("pending", pending as f64),
            ("churns", churns as f64),
            ("heap_events_per_sec", heap_eps),
            ("wheel_events_per_sec", wheel_eps),
            ("wheel_speedup", wheel_eps / heap_eps.max(1e-9)),
        ],
    });

    // 5. Macro sweep: the same fig5-shaped item set end to end, serially,
    // on each engine. The wheel must be no worse in events/sec. Engines
    // alternate *within* each item and each engine keeps its per-item
    // minimum over the reps — whole-sweep-granularity timing on a shared
    // box drifts by ±10% between samples, which swamps the real engine
    // difference; per-item interleaved minima converge on both engines'
    // true floor.
    let reps = if smoke { 7 } else { 2 };
    let mut heap_wall_us = 0.0f64;
    let mut wheel_wall_us = 0.0f64;
    let mut heap_events = 0u64;
    let mut wheel_events = 0u64;
    for &(size, sc) in &items {
        let total = if smoke {
            256 * 1024
        } else {
            outboard_bench::total_for(size)
        };
        let mut mins = [f64::INFINITY; 2];
        let mut events = [0u64; 2];
        for _ in 0..reps {
            for (i, kind) in [EngineKind::Heap, EngineKind::Wheel]
                .into_iter()
                .enumerate()
            {
                let mut cfg = experiment(&machine, sc, size, total);
                cfg.engine = kind;
                let t0 = Instant::now();
                let m = run_ttcp(&cfg);
                mins[i] = mins[i].min(t0.elapsed().as_micros() as f64);
                events[i] = m.events_dispatched;
            }
        }
        heap_wall_us += mins[0];
        wheel_wall_us += mins[1];
        heap_events += events[0];
        wheel_events += events[1];
    }
    let heap_eps_macro = heap_events as f64 / (heap_wall_us / 1e6).max(1e-9);
    let wheel_eps_macro = wheel_events as f64 / (wheel_wall_us / 1e6).max(1e-9);
    workloads.push(Workload {
        name: "macro_sweep",
        fields: vec![
            ("runs", items.len() as f64),
            ("heap_wall_us", heap_wall_us),
            ("wheel_wall_us", wheel_wall_us),
            ("heap_events_per_sec", heap_eps_macro),
            ("wheel_events_per_sec", wheel_eps_macro),
            ("wheel_speedup", wheel_eps_macro / heap_eps_macro.max(1e-9)),
        ],
    });

    // 6. Checksum throughput: wide 8-byte lanes vs the scalar reference,
    // measured with the vendored criterion stand-in.
    let buf_len = if smoke { 256 * 1024 } else { 4 * 1024 * 1024 };
    let buf: Vec<u8> = (0..buf_len).map(|i| (i * 31 + 7) as u8).collect();
    let iters = if smoke { 20 } else { 50 };
    let wide = criterion::measure_ns(iters, || {
        let mut acc = Accumulator::new();
        acc.add_bytes(criterion::black_box(&buf));
        criterion::black_box(acc.partial());
    });
    let scalar = criterion::measure_ns(iters, || {
        let mut acc = Accumulator::new();
        acc.add_bytes_scalar(criterion::black_box(&buf));
        criterion::black_box(acc.partial());
    });
    let wide_mbps = wide.mb_per_sec(buf_len as u64);
    let scalar_mbps = scalar.mb_per_sec(buf_len as u64);
    // PR-3's pillar, pinned: the wide path must stay >= 4x the scalar
    // reference on the same machine or the harness fails.
    let checksum_speedup = wide_mbps / scalar_mbps.max(1e-9);
    let checksum_ok = checksum_speedup >= 4.0;
    workloads.push(Workload {
        name: "checksum_wide",
        fields: vec![
            ("wall_us", wide.per_iter_ns * wide.iters as f64 / 1e3),
            ("mb_per_sec", wide_mbps),
            ("bytes_per_iter", buf_len as f64),
            ("speedup_vs_scalar", checksum_speedup),
            ("gate_4x_ok", if checksum_ok { 1.0 } else { 0.0 }),
        ],
    });
    workloads.push(Workload {
        name: "checksum_scalar",
        fields: vec![
            ("wall_us", scalar.per_iter_ns * scalar.iters as f64 / 1e3),
            ("mb_per_sec", scalar_mbps),
            ("bytes_per_iter", buf_len as f64),
        ],
    });

    // Render BENCH_perf.json (hand-rolled: the workspace has no serde).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"outboard-perf-v1\",");
    let _ = writeln!(json, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, w) in workloads.iter().enumerate() {
        let _ = write!(json, "    {{ \"name\": \"{}\"", w.name);
        for (k, v) in &w.fields {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(json, ", \"{k}\": {}", *v as i64);
            } else {
                let _ = write!(json, ", \"{k}\": {v:.3}");
            }
        }
        let _ = writeln!(
            json,
            " }}{}",
            if i + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_perf.json", &json) {
        Ok(()) => println!("wrote BENCH_perf.json ({} workloads)", workloads.len()),
        Err(e) => {
            eprintln!("failed to write BENCH_perf.json: {e}");
            std::process::exit(1);
        }
    }
    print!("{json}");
    for w in &workloads {
        let wall = w
            .fields
            .iter()
            .find(|(k, _)| *k == "wall_us")
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        eprintln!("perf {:<22} {:>10.0} us", w.name, wall);
    }
    if !determinism_ok {
        eprintln!("perf: parallel sweep output DIFFERS from serial — failing");
        std::process::exit(1);
    }
    if !trace_overhead_ok {
        eprintln!(
            "perf: span tracing costs {overhead_pct:.1}% wall-clock on \
             tcp_large_window (budget: 2%) — failing"
        );
        std::process::exit(1);
    }
    if !timeline_overhead_ok {
        eprintln!(
            "perf: windowed sampling costs {timeline_pct:.1}% wall-clock on \
             tcp_large_window (budget: 2%) — failing"
        );
        std::process::exit(1);
    }
    if !checksum_ok {
        eprintln!(
            "perf: wide checksum is only {checksum_speedup:.2}x the scalar \
             reference (gate: 4x) — failing"
        );
        std::process::exit(1);
    }
}
