//! Parallel sweep runner for independent experiment points.
//!
//! The paper's results are sweeps: Figures 5–6, Tables 1–2, the HOL and
//! crossover studies are each dozens of *independent* simulated transfers.
//! Every [`run_ttcp`] call builds its own seeded [`World`], so the points
//! are embarrassingly parallel — this module fans them out across OS
//! threads with [`std::thread::scope`] (no external dependencies) while
//! keeping the output **byte-identical** to a serial run:
//!
//! * results are collected into index-ordered slots, so callers render
//!   rows in the same order regardless of completion order;
//! * all timing/speedup chatter goes to **stderr**; stdout (tables, CSV)
//!   is produced by the caller from the ordered results.
//!
//! The worker count comes from the shared `--jobs N` / `--jobs=N` flag,
//! the `OUTBOARD_JOBS` environment variable, or the machine's available
//! parallelism, in that order of precedence.
//!
//! [`run_ttcp`]: outboard_testbed::run_ttcp
//! [`World`]: outboard_testbed::World

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Like [`jobs`], but when neither `--jobs` nor `OUTBOARD_JOBS` is given
/// the fallback is `min(cap, cores)` instead of every core. The perf
/// harness uses `cap = 4` so its committed smoke numbers measure real
/// parallelism (not fan-out overhead on a busy box) yet stay comparable
/// across machines.
pub fn jobs_capped(cap: usize) -> usize {
    match explicit_jobs() {
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(cap.max(1)),
    }
}

/// The worker count explicitly requested via `--jobs N`/`--jobs=N` or
/// `OUTBOARD_JOBS`, if any. A malformed value aborts with a message rather
/// than silently running serial.
fn explicit_jobs() -> Option<usize> {
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 0;
    while i < argv.len() {
        let (flag, inline) = match argv[i].split_once('=') {
            Some((name, val)) => (name, Some(val.to_string())),
            None => (argv[i].as_str(), None),
        };
        if flag == "--jobs" {
            let val = match inline {
                Some(v) => v,
                None => {
                    i += 1;
                    argv.get(i).cloned().unwrap_or_default()
                }
            };
            return Some(parse_jobs("--jobs", &val));
        }
        i += 1;
    }
    std::env::var("OUTBOARD_JOBS")
        .ok()
        .map(|val| parse_jobs("OUTBOARD_JOBS", &val))
}

/// Resolve the worker count: `--jobs N`/`--jobs=N` beats `OUTBOARD_JOBS`
/// beats [`std::thread::available_parallelism`]. A malformed value aborts
/// with a message rather than silently running serial.
pub fn jobs() -> usize {
    match explicit_jobs() {
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

fn parse_jobs(src: &str, val: &str) -> usize {
    match val.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("{src} needs a positive integer worker count, got {val:?}");
            std::process::exit(2);
        }
    }
}

/// Run `f` over every item with the worker count from [`jobs`], returning
/// results in item order. See [`run_sweep_jobs`].
pub fn run_sweep<T, R, F>(label: &str, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_sweep_jobs(label, jobs(), items, f)
}

/// Run `f` over every item on `jobs` OS threads, returning results in item
/// order (deterministic regardless of completion order). With `jobs <= 1`
/// or a single item the sweep runs inline, with zero thread overhead —
/// that path is the byte-identical reference the parallel path must match.
///
/// Reports wall time, aggregate item time, and the resulting speedup on
/// stderr; stdout is untouched.
pub fn run_sweep_jobs<T, R, F>(label: &str, jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let started = Instant::now();
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        let out: Vec<R> = items.iter().map(&f).collect();
        report(label, 1, n, started.elapsed().as_micros() as u64, None);
        return out;
    }

    let workers = jobs.min(n);
    let next = AtomicUsize::new(0);
    let item_us = AtomicU64::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let item_us = &item_us;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    let r = f(&items[i]);
                    item_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                    done.push((i, r));
                }
                done
            }));
        }
        for h in handles {
            // A panicking item propagates, as it would serially.
            for (i, r) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });

    let out: Vec<R> = slots
        .into_iter()
        .map(|s| s.expect("sweep slot unfilled"))
        .collect();
    report(
        label,
        workers,
        n,
        started.elapsed().as_micros() as u64,
        Some(item_us.load(Ordering::Relaxed)),
    );
    out
}

/// Stderr-only sweep summary (stdout must stay byte-identical to serial).
fn report(label: &str, workers: usize, items: usize, wall_us: u64, item_us: Option<u64>) {
    match item_us {
        Some(total) if wall_us > 0 => eprintln!(
            "sweep {label}: {items} items on {workers} threads in {:.2}s \
             (aggregate {:.2}s, speedup {:.2}x)",
            wall_us as f64 / 1e6,
            total as f64 / 1e6,
            total as f64 / wall_us as f64
        ),
        _ => eprintln!(
            "sweep {label}: {items} items serial in {:.2}s",
            wall_us as f64 / 1e6
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_index_ordered() {
        let items: Vec<usize> = (0..37).collect();
        let serial = run_sweep_jobs("test-serial", 1, &items, |&i| i * 3);
        let par = run_sweep_jobs("test-par", 4, &items, |&i| i * 3);
        assert_eq!(serial, par);
        assert_eq!(par, (0..37).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn more_workers_than_items() {
        let items = [1usize, 2];
        let out = run_sweep_jobs("test-few", 16, &items, |&i| i + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_sweep() {
        let items: [usize; 0] = [];
        let out = run_sweep_jobs("test-empty", 4, &items, |&i| i);
        assert!(out.is_empty());
    }
}
