//! Criterion micro-benchmarks over the substrate: checksum throughput,
//! mbuf chain operations, CAB engine request rate, HOL simulation slots,
//! and one end-to-end figure point per stack (small transfer so `cargo
//! bench` stays quick).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use outboard_cab::{HolSim, MacMode};
use outboard_host::MachineConfig;
use outboard_mbuf::{Chain, Mbuf, TaskId, UioDesc, UioRegion};
use outboard_stack::StackConfig;
use outboard_testbed::{run_ttcp, ExperimentConfig};
use outboard_wire::checksum::Accumulator;

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    for size in [64usize, 1500, 32 * 1024] {
        let data: Vec<u8> = (0..size).map(|i| i as u8).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("ones_complement_{size}"), |b| {
            b.iter(|| {
                let mut acc = Accumulator::new();
                acc.add_bytes(std::hint::black_box(&data));
                acc.finish()
            })
        });
    }
    g.finish();
}

fn bench_mbuf_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("mbuf");
    let build = || {
        let mut chain = Chain::new();
        for i in 0..16 {
            chain.append(Mbuf::uio(UioDesc {
                region: UioRegion {
                    task: TaskId(1),
                    base: 0,
                },
                off: i * 32 * 1024,
                len: 32 * 1024,
                counter: None,
            }));
        }
        chain
    };
    g.bench_function("copy_range_512k_chain", |b| {
        let chain = build();
        b.iter(|| chain.copy_range(100_000, 32 * 1024))
    });
    g.bench_function("split_front_512k_chain", |b| {
        b.iter_batched(
            build,
            |mut chain| chain.split_front(100_000),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_hol(c: &mut Criterion) {
    c.bench_function("hol_16x16_100slots", |b| {
        b.iter_batched(
            || HolSim::new(16, MacMode::Fifo, 42),
            |mut sim| sim.run(100),
            BatchSize::SmallInput,
        )
    });
}

fn bench_fig5_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for (name, single) in [("unmodified", false), ("single_copy", true)] {
        g.bench_function(format!("ttcp_1mb_64k_{name}"), |b| {
            b.iter(|| {
                let stack = if single {
                    let mut s = StackConfig::single_copy();
                    s.force_single_copy = true;
                    s
                } else {
                    StackConfig::unmodified()
                };
                let mut cfg =
                    ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
                cfg.total_bytes = 1024 * 1024;
                cfg.verify = false;
                let m = run_ttcp(&cfg);
                assert!(m.completed);
                m.throughput_mbps
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_checksum,
    bench_mbuf_chain,
    bench_hol,
    bench_fig5_point
);
// Appended benches: substrate micro-costs that the figure harness leans on.

mod more {
    use super::*;
    use criterion::Criterion;
    use outboard_cab::{Cab, CabConfig, SdmaTx, SgEntry};
    use outboard_host::{HostMem, TaskId, VmSystem};
    use outboard_sim::Time;
    use outboard_taxonomy as tax;
    use outboard_wire::{Ipv4Header, TcpHeader};

    pub fn bench_vm_ops(c: &mut Criterion) {
        c.bench_function("vm_prepare_release_32k", |b| {
            let mut vm = VmSystem::new(MachineConfig::alpha_3000_400(), false);
            b.iter(|| {
                let cost = vm.prepare(TaskId(1), 0, 32 * 1024);
                let cost2 = vm.release(TaskId(1), 0, 32 * 1024);
                std::hint::black_box((cost, cost2))
            })
        });
    }

    pub fn bench_taxonomy(c: &mut Criterion) {
        c.bench_function("taxonomy_full_table", |b| {
            b.iter(|| {
                let mut total = 0u32;
                for (api, csum) in tax::table_rows() {
                    for a in tax::adaptor_columns() {
                        total += tax::cell_cpu_accesses(api, csum, a);
                    }
                }
                std::hint::black_box(total)
            })
        });
    }

    pub fn bench_wire_parse(c: &mut Criterion) {
        let ip = Ipv4Header::new(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            6,
            1000,
            7,
        );
        let mut buf = ip.build().to_vec();
        buf.resize(1020, 0);
        c.bench_function("ipv4_parse", |b| {
            b.iter(|| Ipv4Header::parse(std::hint::black_box(&buf)).unwrap())
        });
        let mut th = TcpHeader::new(1, 2, 3, 4, outboard_wire::TcpFlags::SYN);
        th.mss = Some(32728);
        th.window_scale = Some(4);
        let tb = th.build();
        c.bench_function("tcp_parse_with_options", |b| {
            b.iter(|| TcpHeader::parse(std::hint::black_box(&tb)).unwrap())
        });
    }

    pub fn bench_sdma(c: &mut Criterion) {
        c.bench_function("cab_sdma_tx_32k", |b| {
            let mut cab = Cab::new(1, CabConfig::default());
            let mut mem = HostMem::new();
            mem.create_region(TaskId(1), 0, 64 * 1024);
            let mut now = Time::ZERO;
            b.iter(|| {
                let pkt = cab.alloc_packet(32 * 1024).expect("netmem");
                let ev = cab
                    .sdma_tx(
                        SdmaTx {
                            packet: pkt,
                            sg: vec![SgEntry::User {
                                task: TaskId(1),
                                vaddr: 0,
                                len: 32 * 1024,
                            }],
                            csum: None,
                            reuse_body_csum: false,
                            interrupt_on_complete: false,
                            token: 0,
                        },
                        now,
                        &mem,
                    )
                    .unwrap();
                now = ev.at();
                cab.free_packet(pkt, now);
                std::hint::black_box(now)
            })
        });
    }
}

criterion_group!(
    more_benches,
    more::bench_vm_ops,
    more::bench_taxonomy,
    more::bench_wire_parse,
    more::bench_sdma
);

criterion_main!(benches, more_benches);
