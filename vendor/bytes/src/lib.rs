//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: cheaply-cloneable immutable byte
//! views (`Bytes`) backed by a reference-counted buffer, plus a minimal
//! `BytesMut`. Semantics match the real crate for the covered surface:
//! `slice`/`split_to` are O(1) views that share the underlying allocation.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Observer of backing-storage death: when the last [`Bytes`] view of a
/// hooked buffer drops, the buffer (with its full capacity) and the ticket
/// it was tagged with are handed back to the hook. Buffer pools use this to
/// recycle frame storage without tracking every clone of a view.
pub trait StorageHook: Send + Sync {
    /// Called exactly once per hooked buffer, from the thread that drops
    /// the last view.
    fn reclaim(&self, buf: Vec<u8>, ticket: u64);
}

/// Reference-counted backing storage of a [`Bytes`], optionally tagged with
/// a reclaim hook.
#[derive(Default)]
struct Storage {
    buf: Vec<u8>,
    hook: Option<(Arc<dyn StorageHook>, u64)>,
}

impl Drop for Storage {
    fn drop(&mut self) {
        if let Some((hook, ticket)) = self.hook.take() {
            hook.reclaim(std::mem::take(&mut self.buf), ticket);
        }
    }
}

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Storage>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wrap `buf` and arrange for it to be handed back to `hook` (tagged
    /// `ticket`) when the last view of it drops.
    pub fn with_hook(buf: Vec<u8>, hook: Arc<dyn StorageHook>, ticket: u64) -> Bytes {
        let len = buf.len();
        Bytes {
            data: Arc::new(Storage {
                buf,
                hook: Some((hook, ticket)),
            }),
            off: 0,
            len,
        }
    }

    /// A `Bytes` viewing a static slice (copied; this stand-in does not
    /// special-case static storage).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copy `s` into a new `Bytes`.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view; shares the same backing buffer (O(1)).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Shorten the view to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            self.len = len;
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len,
            "split_to({at}) out of bounds (len {})",
            self.len
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            off: self.off,
            len: at,
        };
        self.off += at;
        self.len -= at;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Arc::new(Storage { buf: v, hook: None }),
            off: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.buf[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// A unique, growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append `s`.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { buf: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.buf.clone()), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(b"hello world".to_vec());
        let w = b.slice(6..);
        assert_eq!(&w[..], b"world");
        let mut rest = b.slice(..);
        let head = rest.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&rest[..], b" world");
    }

    #[test]
    fn freeze_round_trip() {
        let mut m = BytesMut::from(&b"abc"[..]);
        m[0] = b'x';
        assert_eq!(m.freeze(), Bytes::from_static(b"xbc"));
    }

    #[test]
    fn hook_fires_once_when_last_view_drops() {
        use std::sync::Mutex;
        struct Collector(Mutex<Vec<(usize, u64)>>);
        impl StorageHook for Collector {
            fn reclaim(&self, buf: Vec<u8>, ticket: u64) {
                self.0.lock().unwrap().push((buf.capacity(), ticket));
            }
        }
        let hook = Arc::new(Collector(Mutex::new(Vec::new())));
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(b"pooled frame");
        let b = Bytes::with_hook(buf, hook.clone(), 7);
        let view = b.slice(2..8);
        drop(b);
        assert!(hook.0.lock().unwrap().is_empty(), "view still alive");
        assert_eq!(&view[..], b"oled f");
        drop(view);
        let got = hook.0.lock().unwrap().clone();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 7);
        assert!(got[0].0 >= 64, "capacity came back with the buffer");
    }
}
