//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the API subset its benches use. Measurement is intentionally simple: each
//! benchmark runs a short warm-up, then a timed batch, and prints the mean
//! time per iteration (plus throughput when declared). No statistics, plots,
//! or baselines — enough to smoke-run `cargo bench` offline and compare
//! orders of magnitude.

use std::time::{Duration, Instant};

/// Declared throughput of one benchmark, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` sizes its batches; accepted for compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn measure<F: FnMut()>(&mut self, mut once: F) {
        // Warm-up, then time a fixed batch.
        once();
        let start = Instant::now();
        for _ in 0..self.iters {
            once();
        }
        self.elapsed = start.elapsed();
    }

    /// Time `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.measure(|| {
            std::hint::black_box(f());
        });
    }

    /// Time `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Setup cost is included here (unlike real criterion); acceptable for
        // a smoke-run harness.
        self.measure(|| {
            std::hint::black_box(routine(setup()));
        });
    }
}

fn fmt_dur(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    name: &str,
    iters: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (1024.0 * 1024.0) / (per_iter_ns / 1e9)
            )
        }
        Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (per_iter_ns / 1e9))
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} {:>12}/iter  [{} iters]{rate}",
        fmt_dur(per_iter_ns),
        b.iters
    );
}

/// Result of a silent measurement run (see [`measure_ns`]): mean
/// nanoseconds per iteration over the timed batch.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Mean wall nanoseconds per iteration.
    pub per_iter_ns: f64,
    /// Timed iterations.
    pub iters: u64,
}

impl Measurement {
    /// Throughput in MB/s (decimal megabytes) given bytes processed per
    /// iteration.
    pub fn mb_per_sec(&self, bytes_per_iter: u64) -> f64 {
        if self.per_iter_ns <= 0.0 {
            return 0.0;
        }
        bytes_per_iter as f64 / 1e6 / (self.per_iter_ns / 1e9)
    }
}

/// Measure a closure with the same warm-up + timed-batch loop the printed
/// benches use, but return the numbers instead of printing — for harnesses
/// (like the perf binary) that persist measurements to JSON.
pub fn measure_ns<F: FnMut()>(iters: u64, mut f: F) -> Measurement {
    let mut b = Bencher {
        iters: iters.max(1),
        elapsed: Duration::ZERO,
    };
    b.measure(|| {
        std::hint::black_box(&mut f)();
    });
    Measurement {
        per_iter_ns: b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64,
        iters: b.iters,
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_iters: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name} --");
        BenchmarkGroup {
            _c: self,
            iters: 20,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.default_iters, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    iters: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Lower/raise the iteration count (maps from criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.iters, self.throughput, &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
