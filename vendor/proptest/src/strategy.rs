//! Value-generation strategies.

use crate::runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates", self.whence);
    }
}

/// Always produce a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()`: the full range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize);

macro_rules! arb_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

arb_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! arb_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

arb_float!(f32, f64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
