//! Deterministic test runner: seeded PRNG, fixed case count, no shrinking.

/// Runner configuration; only `cases` is consulted by this stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic splitmix64-based PRNG used to draw test inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `f` for `cfg.cases` seeded cases; panic with seed + message on the
/// first failure.
pub fn run<F>(cfg: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let base = fnv1a(name);
    for case in 0..cfg.cases {
        let seed = base ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut rng = TestRng::new(seed);
        if let Err(msg) = f(&mut rng) {
            panic!(
                "proptest '{name}' case {case}/{} failed (seed {seed:#018x}): {msg}",
                cfg.cases
            );
        }
    }
}
