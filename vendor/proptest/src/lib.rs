//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset of proptest it uses: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()`, integer/float range strategies, tuple
//! strategies, `collection::vec`, `option::of`, and `Strategy::prop_map`.
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! PRNG seeded from the test name and case index (so failures reproduce
//! run-to-run), and there is **no shrinking** — a failing case reports its
//! seed instead of a minimized input.

pub mod runner;
pub mod strategy;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::runner::TestRng;
    use crate::strategy::Strategy;

    /// Accepted size specifications for [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }
    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }
    impl SizeRange for std::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }
    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::runner::TestRng;
    use crate::strategy::Strategy;

    /// Strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(inner)`: `None` about half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The `proptest::prelude` glob import.
pub mod prelude {
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a `proptest!` body; failure rejects the case
/// with a message rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`", lhs, rhs
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`: {}", lhs, rhs, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`",
                lhs,
                rhs
            ));
        }
    }};
}

/// Define property tests. Supports an optional
/// `#![proptest_config(expr)]` inner attribute followed by any number of
/// `fn name(pat in strategy, ...) { body }` items (with outer attributes).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_cfg: $crate::runner::ProptestConfig = $cfg;
            $crate::runner::run(&__pt_cfg, ::std::stringify!($name), |__pt_rng| {
                $crate::__proptest_bind!{ __pt_rng, $($params)* }
                let __pt_result: ::std::result::Result<(), ::std::string::String> =
                    (|| { { $body }; ::std::result::Result::Ok(()) })();
                __pt_result
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), $rng);
    };
    ($rng:ident, $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), $rng);
        $crate::__proptest_bind!{ $rng, $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges honor their bounds; tuples and vecs compose.
        #[test]
        fn ranges_and_collections(x in 3u64..10,
                                  f in 0.0f64..=1.0,
                                  (k, n) in (0u8..3, 1usize..5),
                                  v in crate::collection::vec(any::<u8>(), 2..6),
                                  o in crate::option::of(any::<bool>())) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(k < 3 && (1..5).contains(&n));
            prop_assert!((2..6).contains(&v.len()));
            let _ = o;
        }

        #[test]
        fn prop_map_applies(y in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 10, "y was {}", y);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            crate::runner::run(
                &ProptestConfig {
                    cases: 8,
                    ..ProptestConfig::default()
                },
                "det",
                |rng| {
                    out.push(rng.next_u64());
                    Ok(())
                },
            );
        }
        assert_eq!(a, b);
    }
}
