//! Head-of-line blocking (§2.1): why the CAB has logical channels.
//!
//! A FIFO MAC on an input-queued switch under uniform random traffic caps
//! at 2 − √2 ≈ 58.6 % utilization (Hluchyj–Karol); per-destination logical
//! channels recover nearly all of it. This example sweeps the channel
//! count.
//!
//! Run with: `cargo run --release --example hol_channels`

use outboard::cab::{HolSim, MacMode};

fn main() {
    let nodes = 16;
    let slots = 20_000;
    println!("== {nodes}x{nodes} switch, saturated uniform random traffic ==");
    let fifo = HolSim::new(nodes, MacMode::Fifo, 42).run(slots);
    println!(
        "FIFO MAC          : {:5.1} %   (theory: 2-sqrt(2) = 58.6 %)",
        fifo.utilization * 100.0
    );
    for channels in [1usize, 2, 4, 8, 16] {
        let r = HolSim::new(nodes, MacMode::LogicalChannels { channels }, 42).run(slots);
        println!(
            "{channels:2} logical channels: {:5.1} %",
            r.utilization * 100.0
        );
    }
    println!(
        "\nThe CAB ships {} logical channels.",
        outboard::cab::CabConfig::default().num_channels
    );
}
