//! Watch the wire: a tcpdump-style view of a short single-copy transfer —
//! handshake, 32 KB data segments (with the outboard checksum already
//! inserted by the CAB), delayed ACKs, FIN teardown.
//!
//! Run with: `cargo run --example tcpdump`

use outboard::host::MachineConfig;
use outboard::netsim::Capture;
use outboard::sim::{Dur, Time};
use outboard::stack::StackConfig;
use outboard::testbed::experiment::build_ttcp_world;
use outboard::testbed::ExperimentConfig;

fn main() {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = 128 * 1024;
    let mut w = build_ttcp_world(&cfg);
    w.capture = Some(Capture::new());
    w.run_until(Time::ZERO + Dur::secs(5));
    let cap = w.capture.take().unwrap();
    println!("== frames on the fabric ({}) ==", cap.frames().len());
    print!("{}", cap.dump());
}
