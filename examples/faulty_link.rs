//! Retransmission from outboard memory under packet loss (§4.3).
//!
//! A lossy HIPPI link forces TCP retransmissions. On the single-copy stack
//! the retransmitted data is *already in CAB network memory*: the driver
//! re-DMAs only a fresh header and the hardware folds in the saved body
//! checksum — watch the `header-only retransmits` counter. Data integrity
//! is verified end to end under loss.
//!
//! Run with: `cargo run --release --example faulty_link`

use outboard::host::MachineConfig;
use outboard::stack::StackConfig;
use outboard::testbed::{run_ttcp, ExperimentConfig};

fn main() {
    println!("drop%   thr_Mbps  rexmt  hdr_only_rexmt  verify_errs  completed");
    for drop_pct in [0.0, 0.5, 1.0, 2.0, 5.0] {
        let mut stack = StackConfig::single_copy();
        stack.force_single_copy = true;
        let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
        cfg.total_bytes = 4 * 1024 * 1024;
        cfg.drop_p = drop_pct / 100.0;
        cfg.seed = 1234;
        let m = run_ttcp(&cfg);
        println!(
            "{:5.1}  {:9.1}  {:5}  {:14}  {:11}  {}",
            drop_pct,
            m.throughput_mbps,
            m.retransmits,
            m.header_only_retransmits,
            m.verify_errors,
            m.completed
        );
        assert_eq!(m.verify_errors, 0, "data must survive loss intact");
    }
    println!("\nEvery retransmission delivered correct data; header-only");
    println!("retransmits reused the body checksum saved by the CAB.");
}
