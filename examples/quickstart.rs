//! Quickstart: move a megabyte between two simulated Alphas over the CAB
//! with the single-copy stack, and show what the offload machinery did.
//!
//! Run with: `cargo run --example quickstart`

use outboard::host::MachineConfig;
use outboard::sim::{Dur, Time};
use outboard::stack::StackConfig;
use outboard::testbed::experiment::build_ttcp_world;
use outboard::testbed::{run_ttcp, ExperimentConfig};

fn main() {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = 1024 * 1024;

    let metrics = run_ttcp(&cfg);
    println!("== single-copy transfer, 1 MB in 64 KB writes ==");
    println!("completed         : {}", metrics.completed);
    println!("bytes delivered   : {}", metrics.bytes);
    println!("payload verified  : {} errors", metrics.verify_errors);
    println!("throughput        : {:7.1} Mbit/s", metrics.throughput_mbps);
    println!(
        "sender CPU        : {:7.1} %",
        metrics.sender_utilization * 100.0
    );
    println!(
        "sender efficiency : {:7.0} Mbit/s at full CPU",
        metrics.sender_efficiency_mbps
    );
    println!("outboard checksums: {}", metrics.hw_checksums);
    println!("software checksums: {}", metrics.sw_checksums);

    // Peek inside a world to show the mechanism-level counters.
    let mut w = build_ttcp_world(&cfg);
    w.run_until(Time::ZERO + Dur::secs(5));
    let s = &w.hosts[0].kernel.stats;
    println!("\n== sender kernel counters ==");
    println!("packets out            : {}", s.tx_packets);
    println!("M_UIO -> M_WCAB        : {}", s.uio_to_wcab);
    println!(
        "VM ops (pin/map calls) : {}",
        w.hosts[0].kernel.vm.stats().pin_calls
    );
    println!("header-only retransmits: {}", s.retransmit_header_only);
}
