//! A ttcp-style benchmark front-end over the simulation: pick the machine,
//! the stack, and the write size, and get the paper's three metrics.
//!
//! Usage:
//!   cargo run --release --example ttcp -- [single|unmod] [400|300lx] [write_kb] [total_mb]
//!
//! Defaults: single 400 64 8

use outboard::host::MachineConfig;
use outboard::stack::StackConfig;
use outboard::testbed::{run_ttcp, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("single");
    let machine = args.get(2).map(String::as_str).unwrap_or("400");
    let write_kb: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(64);
    let total_mb: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(8);

    let machine = match machine {
        "300lx" | "300" | "lx" => MachineConfig::alpha_3000_300lx(),
        _ => MachineConfig::alpha_3000_400(),
    };
    let stack = match mode {
        "unmod" | "unmodified" => StackConfig::unmodified(),
        _ => {
            let mut s = StackConfig::single_copy();
            s.force_single_copy = true;
            s
        }
    };
    let mode_name = match stack.mode {
        outboard::stack::StackMode::SingleCopy => "single-copy",
        outboard::stack::StackMode::Unmodified => "unmodified",
    };

    let mut cfg = ExperimentConfig::new(machine.clone(), stack, write_kb * 1024);
    cfg.total_bytes = total_mb * 1024 * 1024;
    println!(
        "ttcp: {} stack on {}, {} KB writes, {} MB total",
        mode_name, machine.name, write_kb, total_mb
    );
    let m = run_ttcp(&cfg);
    println!("  completed            : {}", m.completed);
    println!("  elapsed (virtual)    : {}", m.elapsed);
    println!("  throughput           : {:8.1} Mbit/s", m.throughput_mbps);
    println!("  sender utilization   : {:8.2}", m.sender_utilization);
    println!("  receiver utilization : {:8.2}", m.receiver_utilization);
    println!(
        "  sender efficiency    : {:8.0} Mbit/s",
        m.sender_efficiency_mbps
    );
    println!(
        "  receiver efficiency  : {:8.0} Mbit/s",
        m.receiver_efficiency_mbps
    );
    println!("  writes               : {}", m.writes);
    println!("  retransmits          : {}", m.retransmits);
    println!("  verify errors        : {}", m.verify_errors);
}
