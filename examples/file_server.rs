//! An in-kernel application (§5): an NFS-like block server living in the
//! receiver's kernel, spoken to by a user-space client over UDP through the
//! CAB. The server sees requests through the ordered `M_WCAB` → regular
//! conversion queue; its responses go down the stack as shared kernel
//! mbufs — single-copy in both directions without the socket layer.
//!
//! Run with: `cargo run --example file_server`

use outboard::host::{MachineConfig, TaskId};
use outboard::sim::{Dur, Time};
use outboard::stack::{SockAddr, StackConfig};
use outboard::testbed::apps::{FileClient, KernelFileServer};
use outboard::testbed::World;
use std::net::Ipv4Addr;

fn main() {
    let mut w = World::new();
    let client_host = w.add_host(
        "client",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let server_host = w.add_host(
        "server",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let client_ip = Ipv4Addr::new(10, 0, 0, 1);
    let server_ip = Ipv4Addr::new(10, 0, 0, 2);
    w.connect_cab(
        client_host,
        client_ip,
        server_host,
        server_ip,
        Dur::micros(5),
        7,
    );

    // The in-kernel server: runs once to create its kernel socket, then is
    // driven entirely by KernelReady events.
    let server_task = TaskId(10);
    w.add_app(
        server_host,
        Box::new(KernelFileServer::new(server_task, 2049)),
        false,
    );
    // Let the server initialize, then bind its readiness routing.
    w.run_until(Time::ZERO + Dur::micros(100));
    let server_sock = {
        let app = w.hosts[server_host].apps[0].as_ref().unwrap();
        app.as_any()
            .downcast_ref::<KernelFileServer>()
            .unwrap()
            .sock
            .expect("server socket created")
    };
    w.register_kernel_sock(server_host, server_sock, server_task);

    // A user-space client requesting 32 blocks of 4 KB.
    let client_task = TaskId(11);
    let blocks = 32u32;
    let count = 4096usize;
    w.add_app(
        client_host,
        Box::new(FileClient::new(
            client_task,
            SockAddr::new(server_ip, 2049),
            blocks,
            count,
        )),
        true,
    );

    w.run_until(Time::ZERO + Dur::secs(10));

    let client = w.hosts[client_host].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<FileClient>()
        .unwrap();
    let server = w.hosts[server_host].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<KernelFileServer>()
        .unwrap();
    println!("== in-kernel file server over UDP/CAB ==");
    println!("blocks requested : {blocks} x {count} B");
    println!("blocks received  : {}", client.blocks_received);
    println!("verify errors    : {}", client.verify_errors);
    println!("requests served  : {}", server.requests_served);
    let ks = &w.hosts[server_host].kernel.stats;
    println!(
        "server kernel: wcab->regular conversions = {}",
        ks.wcab_to_regular
    );
    println!(
        "server kernel: hw checksums on responses = {}",
        ks.hw_checksums
    );
    assert_eq!(client.blocks_received, blocks);
    assert_eq!(client.verify_errors, 0);
    println!("OK: all blocks served and verified");
}
