//! # outboard
//!
//! A reproduction of *Kleinpaste, Steenkiste & Zill, "Software Support for
//! Outboard Buffering and Checksumming" (SIGCOMM 1995)* as a deterministic,
//! fully-simulated system: a single-copy BSD protocol stack over a model of
//! the Gigabit Nectar CAB network adaptor.
//!
//! This crate is a façade that re-exports the workspace:
//!
//! * [`sim`] — discrete-event core (time, queue, RNG, statistics, trace),
//! * [`wire`] — Internet checksum algebra and protocol headers,
//! * [`mbuf`] — the mbuf framework with `M_UIO` / `M_WCAB` descriptors,
//! * [`cab`] — the CAB adaptor model (network memory, SDMA/MDMA engines,
//!   outboard checksumming, logical channels),
//! * [`host`] — machine cost models (Alpha 3000/400 and 3000/300LX), CPU
//!   accounting, VM pin/map costs (Table 2),
//! * [`netsim`] — links and fault injection,
//! * [`stack`] — the paper's contribution: the single-copy protocol stack,
//! * [`taxonomy`] — the host-interface taxonomy (Table 1),
//! * [`testbed`] — two-host worlds, ttcp apps, and the experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use outboard::host::MachineConfig;
//! use outboard::stack::StackConfig;
//! use outboard::testbed::{run_ttcp, ExperimentConfig};
//!
//! let mut cfg = ExperimentConfig::new(
//!     MachineConfig::alpha_3000_400(),
//!     StackConfig::single_copy(),
//!     64 * 1024, // write size
//! );
//! cfg.total_bytes = 1024 * 1024;
//! let metrics = run_ttcp(&cfg);
//! assert!(metrics.completed);
//! assert_eq!(metrics.verify_errors, 0);
//! ```

pub use outboard_cab as cab;
pub use outboard_host as host;
pub use outboard_mbuf as mbuf;
pub use outboard_netsim as netsim;
pub use outboard_sim as sim;
pub use outboard_stack as stack;
pub use outboard_taxonomy as taxonomy;
pub use outboard_testbed as testbed;
pub use outboard_wire as wire;
