//! Fault-injection integration tests: the outboard retransmission story
//! (§4.3) and the hardware receive checksum as an actual error detector.

use outboard::host::MachineConfig;
use outboard::sim::{Dur, Time};
use outboard::stack::StackConfig;
use outboard::testbed::experiment::build_ttcp_world;
use outboard::testbed::{run_ttcp, ExperimentConfig};

fn lossy(drop_pct: f64, seed: u64) -> ExperimentConfig {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = 4 * 1024 * 1024;
    cfg.drop_p = drop_pct / 100.0;
    cfg.seed = seed;
    cfg
}

#[test]
fn loss_recovers_with_intact_data() {
    for (pct, seed) in [(2.0, 7), (5.0, 11), (10.0, 13)] {
        let m = run_ttcp(&lossy(pct, seed));
        assert!(m.completed, "{pct}% loss: transfer stalled: {m:?}");
        assert_eq!(m.bytes, 4 * 1024 * 1024);
        assert_eq!(m.verify_errors, 0, "{pct}% loss corrupted the stream");
        assert!(m.retransmits > 0, "{pct}% loss should retransmit");
    }
}

#[test]
fn retransmission_reuses_outboard_data() {
    // With loss, full-segment retransmissions take the header-only path:
    // only a fresh header crosses the host bus; the saved body checksum is
    // folded in by the hardware (§4.3).
    let cfg = lossy(5.0, 11);
    let m = run_ttcp(&cfg);
    assert!(m.completed);
    assert!(
        m.header_only_retransmits > 0,
        "no header-only retransmissions happened: {m:?}"
    );

    // Device-level confirmation: the CAB counted body-checksum reuses.
    let mut w = build_ttcp_world(&cfg);
    w.run_until(Time::ZERO + Dur::secs(60));
    if let outboard::stack::driver::IfaceKind::Cab(cab) = &w.hosts[0].kernel.ifaces[0].kind {
        assert!(
            cab.cab.stats.body_csum_reuses > 0,
            "hardware never reused a saved body checksum"
        );
    } else {
        panic!("expected CAB");
    }
}

#[test]
fn corruption_is_caught_by_the_hardware_checksum() {
    let mut cfg = lossy(0.0, 3);
    cfg.total_bytes = 2 * 1024 * 1024;
    let mut w = build_ttcp_world(&cfg);
    // Corrupt a handful of frames on the forward link.
    w.links
        .get_mut(&(0, outboard::stack::IfaceId(0)))
        .unwrap()
        .faults
        .corrupt_p = 0.02;
    let finished = w.run_while(Time::ZERO + Dur::secs(60), |w| {
        !(w.hosts[0].apps[0]
            .as_ref()
            .map(|a| a.finished())
            .unwrap_or(true)
            && w.hosts[1].apps[0]
                .as_ref()
                .map(|a| a.finished())
                .unwrap_or(true))
    });
    assert!(finished, "transfer stalled under corruption");
    let rx_stats = &w.hosts[1].kernel.stats;
    assert!(
        rx_stats.csum_errors > 0,
        "corrupted frames must be rejected by checksum"
    );
    // And the application data still verified: the receiver app checks
    // every byte against the pattern.
    let rx = w.hosts[1].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<outboard::testbed::apps::TtcpReceiver>()
        .unwrap();
    assert_eq!(rx.verify_errors, 0);
    assert_eq!(rx.bytes_read, 2 * 1024 * 1024);
}

#[test]
fn duplication_and_reordering_are_tolerated() {
    let mut cfg = lossy(0.0, 17);
    cfg.total_bytes = 2 * 1024 * 1024;
    let mut w = build_ttcp_world(&cfg);
    {
        let link = w.links.get_mut(&(0, outboard::stack::IfaceId(0))).unwrap();
        link.faults.dup_p = 0.05;
        link.faults.reorder_p = 0.05;
        link.faults.reorder_delay = Dur::millis(2);
    }
    let finished = w.run_while(Time::ZERO + Dur::secs(60), |w| {
        !(w.hosts[0].apps[0]
            .as_ref()
            .map(|a| a.finished())
            .unwrap_or(true)
            && w.hosts[1].apps[0]
                .as_ref()
                .map(|a| a.finished())
                .unwrap_or(true))
    });
    assert!(finished, "stalled under dup/reorder");
    let rx = w.hosts[1].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<outboard::testbed::apps::TtcpReceiver>()
        .unwrap();
    assert_eq!(rx.verify_errors, 0);
    assert_eq!(rx.bytes_read, 2 * 1024 * 1024);
}

#[test]
fn unmodified_stack_survives_loss_too() {
    let mut cfg = lossy(5.0, 23);
    cfg.stack = StackConfig::unmodified();
    cfg.total_bytes = 2 * 1024 * 1024;
    let m = run_ttcp(&cfg);
    assert!(m.completed);
    assert_eq!(m.verify_errors, 0);
    // Traditional path: no outboard buffers exist, so retransmissions
    // always re-DMA from kernel mbufs (never header-only).
    assert_eq!(m.header_only_retransmits, 0);
}

#[test]
fn heavy_loss_eventually_progresses() {
    // 20 % loss is brutal (RTO backoff territory) but must not deadlock.
    let mut cfg = lossy(20.0, 29);
    cfg.total_bytes = 256 * 1024;
    let m = run_ttcp(&cfg);
    assert!(m.completed, "{m:?}");
    assert_eq!(m.verify_errors, 0);
}

/// The traditional path's software checksum also rejects corruption — the
/// defense does not depend on the CAB.
#[test]
fn unmodified_stack_detects_corruption_too() {
    let mut cfg = lossy(0.0, 31);
    cfg.stack = StackConfig::unmodified();
    cfg.total_bytes = 1024 * 1024;
    let mut w = build_ttcp_world(&cfg);
    w.links
        .get_mut(&(0, outboard::stack::IfaceId(0)))
        .unwrap()
        .faults
        .corrupt_p = 0.02;
    let finished = w.run_while(Time::ZERO + Dur::secs(60), |w| {
        !(w.hosts[0].apps[0]
            .as_ref()
            .map(|a| a.finished())
            .unwrap_or(true)
            && w.hosts[1].apps[0]
                .as_ref()
                .map(|a| a.finished())
                .unwrap_or(true))
    });
    assert!(finished, "stalled under corruption (unmodified)");
    assert!(w.hosts[1].kernel.stats.csum_errors > 0);
    let rx = w.hosts[1].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<outboard::testbed::apps::TtcpReceiver>()
        .unwrap();
    assert_eq!(rx.verify_errors, 0);
    assert_eq!(rx.bytes_read, 1024 * 1024);
}
