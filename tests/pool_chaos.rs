//! Pool recycling under fault injection and chaos.
//!
//! The buffer pool only pays off if recycling keeps working when the stack
//! is under stress: drops force retransmits, CAB faults force the software
//! fallback, chaos actions wedge and heal whole adaptors. Each case here
//! runs a full ttcp transfer under one fault regime and then checks the
//! three recycling invariants:
//!
//! * **conservation** — once the world (and every frozen frame it produced)
//!   is dropped, `acquires == releases` with zero ticket errors: nothing
//!   leaked, nothing double-freed;
//! * **steady state** — `misses` is bounded by `high_water + discards`:
//!   allocation count tracks peak concurrency, not packet count, so the
//!   hot path really is recycling rather than allocating;
//! * **dma-check** — with `--features dma-check`, the CAB ownership
//!   journals record no violations: recycled storage never reaches a DMA
//!   engine while another engine or the host still owns it (the pool's
//!   generation tags must prevent recycled-handle aliasing).

use outboard::host::MachineConfig;
use outboard::sim::{BufPool, ChaosSchedule, Dur, PoolStats, Time};
use outboard::stack::StackConfig;
use outboard::testbed::experiment::build_ttcp_world;
use outboard::testbed::{run_chaos, ExperimentConfig, World, DEFAULT_LIVENESS_BUDGET};
use std::sync::Arc;

/// One fault regime of the soak matrix.
#[derive(Clone)]
struct FaultCase {
    name: &'static str,
    drop_p: f64,
    corrupt_p: f64,
    reorder_p: f64,
    dup_p: f64,
    cab_alloc_fail_p: f64,
    cab_sdma_fail_p: f64,
    cab_mdma_fail_p: f64,
    cab_csum_error_p: f64,
}

impl FaultCase {
    const fn clean(name: &'static str) -> FaultCase {
        FaultCase {
            name,
            drop_p: 0.0,
            corrupt_p: 0.0,
            reorder_p: 0.0,
            dup_p: 0.0,
            cab_alloc_fail_p: 0.0,
            cab_sdma_fail_p: 0.0,
            cab_mdma_fail_p: 0.0,
            cab_csum_error_p: 0.0,
        }
    }
}

/// Link faults, CAB faults, and everything at once — each severe enough to
/// exercise retransmission and fallback paths, mild enough that TCP still
/// completes the transfer inside the deadline.
fn fault_matrix() -> Vec<FaultCase> {
    vec![
        FaultCase::clean("baseline"),
        FaultCase {
            drop_p: 0.02,
            ..FaultCase::clean("drop")
        },
        FaultCase {
            corrupt_p: 0.02,
            ..FaultCase::clean("corrupt")
        },
        FaultCase {
            reorder_p: 0.02,
            dup_p: 0.02,
            ..FaultCase::clean("reorder+dup")
        },
        FaultCase {
            cab_alloc_fail_p: 0.05,
            ..FaultCase::clean("cab-alloc-fail")
        },
        FaultCase {
            cab_sdma_fail_p: 0.02,
            cab_mdma_fail_p: 0.02,
            ..FaultCase::clean("cab-dma-fail")
        },
        FaultCase {
            cab_csum_error_p: 0.02,
            ..FaultCase::clean("cab-csum-error")
        },
        FaultCase {
            drop_p: 0.01,
            corrupt_p: 0.01,
            reorder_p: 0.01,
            dup_p: 0.01,
            cab_alloc_fail_p: 0.01,
            cab_sdma_fail_p: 0.01,
            cab_mdma_fail_p: 0.01,
            cab_csum_error_p: 0.01,
            ..FaultCase::clean("everything")
        },
    ]
}

fn config_for(case: &FaultCase, seed: u64) -> ExperimentConfig {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 16 * 1024);
    cfg.total_bytes = 512 * 1024;
    cfg.seed = seed;
    cfg.verify = true;
    cfg.drop_p = case.drop_p;
    cfg.corrupt_p = case.corrupt_p;
    cfg.reorder_p = case.reorder_p;
    cfg.dup_p = case.dup_p;
    cfg.cab_alloc_fail_p = case.cab_alloc_fail_p;
    cfg.cab_sdma_fail_p = case.cab_sdma_fail_p;
    cfg.cab_mdma_fail_p = case.cab_mdma_fail_p;
    cfg.cab_csum_error_p = case.cab_csum_error_p;
    cfg
}

/// Drive a built world to transfer completion (or the deadline) — the same
/// loop `run_ttcp` uses, kept inline so the `World` stays available for
/// the journal and teardown checks afterwards.
fn drive(w: &mut World, total_bytes: usize) -> bool {
    let deadline = Time::ZERO + Dur::from_secs_f64((total_bytes as f64 * 8.0 / 1e6).max(30.0));
    w.run_while(deadline, |w| {
        !(w.hosts[0].apps[0]
            .as_ref()
            .map(|a| a.finished())
            .unwrap_or(true)
            && w.hosts[1].apps[0]
                .as_ref()
                .map(|a| a.finished())
                .unwrap_or(true))
    })
}

/// Every CAB ownership journal in the world must be clean (and must have
/// actually observed traffic). Compiled out without `dma-check`: the rest
/// of the invariants still run, and CI's dma-check step arms this one.
#[cfg(feature = "dma-check")]
fn assert_journals_clean(w: &mut World, name: &str) {
    for (h, host) in w.hosts.iter_mut().enumerate() {
        for iface in &mut host.kernel.ifaces {
            if let Some(ci) = iface.cab() {
                let violations = ci.cab.ownership_violations();
                assert!(
                    violations.is_empty(),
                    "case {name}: host {h} dma-check journal recorded {} \
                     ownership violations, first: {}",
                    violations.len(),
                    violations[0],
                );
                assert!(
                    ci.cab.ownership_transitions() > 0,
                    "case {name}: host {h} journal saw no transfers — the \
                     dma-check instrumentation is not wired up",
                );
            }
        }
    }
}

#[cfg(not(feature = "dma-check"))]
fn assert_journals_clean(_w: &mut World, _name: &str) {}

/// Power-of-two size classes the pool maintains (1 KiB … 1 MiB). A miss is
/// counted per class (the class's freelist was empty) while `high_water` is
/// global outstanding, so the sound steady-state bound is
/// `misses <= classes * high_water + discards` — still orders of magnitude
/// below per-packet allocation.
const POOL_CLASSES: u64 = 11;

fn assert_steady_state(ps: &PoolStats, name: &str) {
    assert!(ps.acquires > 0, "case {name}: pool never used");
    assert!(
        ps.misses <= POOL_CLASSES * ps.high_water + ps.discards,
        "case {name}: {} misses exceed {POOL_CLASSES}x high_water {} + \
         discards {} — the hot path is allocating instead of recycling",
        ps.misses,
        ps.high_water,
        ps.discards,
    );
    assert!(
        ps.hits >= ps.misses,
        "case {name}: freelist hits ({}) below misses ({}) — recycling is \
         not carrying the load",
        ps.hits,
        ps.misses,
    );
    assert_eq!(ps.ticket_errors, 0, "case {name}: stale/foreign tickets");
}

/// After the world and all frames are gone the pool must balance exactly.
fn assert_conservation(pool: Arc<BufPool>, name: &str) {
    let ps = pool.stats();
    assert_eq!(
        ps.acquires, ps.releases,
        "case {name}: acquires vs releases diverge at teardown — buffers \
         leaked or double-freed",
    );
    assert!(
        pool.balanced(),
        "case {name}: pool not balanced at teardown: {ps:?}"
    );
}

#[test]
fn pool_survives_fault_matrix_soak() {
    for (i, case) in fault_matrix().into_iter().enumerate() {
        let cfg = config_for(&case, 0xC0FFEE + i as u64);
        let mut w = build_ttcp_world(&cfg);
        let done = drive(&mut w, cfg.total_bytes);
        // Fault regimes are tuned so TCP always finishes; a hang here is a
        // real robustness regression, not a flaky tuning artifact.
        assert!(done, "case {}: transfer did not complete", case.name);
        assert_steady_state(&w.pool.stats(), case.name);
        assert_journals_clean(&mut w, case.name);
        let pool = Arc::clone(&w.pool);
        drop(w);
        assert_conservation(pool, case.name);
    }
}

#[test]
fn pool_survives_chaos_schedules() {
    // The chaos engine wedges/heals adaptors and partitions links on top
    // of a fault-free transfer; the oracle checks integrity and liveness,
    // and the registry snapshot carries the pool counters.
    for seed in [3u64, 11] {
        let cfg = config_for(&FaultCase::clean("chaos"), seed);
        let schedule = ChaosSchedule::generate(seed, 10, 2);
        let outcome = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
        assert!(
            outcome.passed(),
            "chaos seed {seed}: oracle violations: {:?}",
            outcome.violations
        );
        let acquires = outcome.stats.counter_value("world.pool.acquires");
        let misses = outcome.stats.counter_value("world.pool.misses");
        let high_water = outcome.stats.counter_value("world.pool.high_water");
        let discards = outcome.stats.counter_value("world.pool.discards");
        let ticket_errors = outcome.stats.counter_value("world.pool.ticket_errors");
        assert!(acquires > 0, "chaos seed {seed}: pool never used");
        assert!(
            misses <= POOL_CLASSES * high_water + discards,
            "chaos seed {seed}: {misses} misses exceed {POOL_CLASSES}x \
             high_water {high_water} + discards {discards}",
        );
        assert_eq!(ticket_errors, 0, "chaos seed {seed}: ticket errors");
    }
}

#[test]
fn pool_balances_after_chaos_world_teardown() {
    // Same conservation check as the fault matrix, but with the chaos
    // driver installed — wedge/heal cycles must not strand buffers.
    for seed in [5u64, 23] {
        let cfg = config_for(&FaultCase::clean("chaos-teardown"), seed);
        let schedule = ChaosSchedule::generate(seed, 8, 2);
        let mut w = build_ttcp_world(&cfg);
        w.install_chaos(&schedule);
        drive(&mut w, cfg.total_bytes);
        assert_steady_state(&w.pool.stats(), "chaos-teardown");
        assert_journals_clean(&mut w, "chaos-teardown");
        let pool = Arc::clone(&w.pool);
        drop(w);
        assert_conservation(pool, "chaos-teardown");
    }
}
