//! System-level property tests: for arbitrary (but bounded) combinations
//! of write size, alignment, stack mode, loss rate and seed, a transfer
//! must complete with byte-exact delivery. These catch interaction bugs no
//! single-scenario test would.

use outboard::host::MachineConfig;
use outboard::stack::{StackConfig, StackMode};
use outboard::testbed::{run_ttcp, ExperimentConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a whole-system run
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_transfer_completes_and_verifies(
        write_kb in 1usize..129,
        misalign in 0u64..4,
        single_copy in any::<bool>(),
        force in any::<bool>(),
        lazy in any::<bool>(),
        align_split in any::<bool>(),
        drop_pct in 0u32..3,
        seed in 1u64..1_000_000,
    ) {
        let mut stack = if single_copy {
            StackConfig::single_copy()
        } else {
            StackConfig::unmodified()
        };
        stack.force_single_copy = force && stack.mode == StackMode::SingleCopy;
        stack.lazy_vm = lazy;
        stack.align_split = align_split;
        let mut cfg = ExperimentConfig::new(
            MachineConfig::alpha_3000_400(),
            stack,
            write_kb * 1024,
        );
        cfg.total_bytes = 768 * 1024;
        cfg.sender_misalign = misalign;
        cfg.drop_p = drop_pct as f64 / 100.0;
        cfg.seed = seed;
        let m = run_ttcp(&cfg);
        prop_assert!(m.completed, "stalled: {m:?}");
        prop_assert_eq!(m.bytes, 768 * 1024);
        prop_assert_eq!(m.verify_errors, 0, "corruption: {:?}", m);
    }
}
