//! Interoperability tests (§5 and §4.1): the modified stack must serve
//! conventional devices, user applications on any interface, loopback,
//! ICMP, and routing between interfaces — all through the *same* stack.

use outboard::host::{MachineConfig, TaskId};
use outboard::sim::{Dur, Time};
use outboard::stack::{Proto, SockAddr, StackConfig};
use outboard::testbed::apps::{TtcpReceiver, TtcpSender};
use outboard::testbed::World;
use std::net::Ipv4Addr;

const IP_A: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 1);
const IP_B: Ipv4Addr = Ipv4Addr::new(192, 168, 1, 2);

fn eth_world() -> World {
    let mut w = World::new();
    let a = w.add_host(
        "a",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let b = w.add_host(
        "b",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    // 10 Mbit/s conventional Ethernet.
    w.connect_eth(a, IP_A, b, IP_B, 10e6, 5);
    w
}

fn run_to_completion(w: &mut World, secs: u64) -> bool {
    w.run_while(Time::ZERO + Dur::secs(secs), |w| {
        !w.hosts.iter().all(|h| {
            h.apps
                .iter()
                .all(|a| a.as_ref().map(|a| a.finished()).unwrap_or(true))
        })
    })
}

#[test]
fn tcp_over_conventional_ethernet() {
    // The single-copy stack over a device with no outboard support: the
    // UIO->regular conversion layer at the driver entry (§5) makes it work.
    let mut w = eth_world();
    w.add_app(
        1,
        Box::new(TtcpReceiver::new(TaskId(2), 5001, 32 * 1024)),
        true,
    );
    w.add_app(
        0,
        Box::new(TtcpSender::new(
            TaskId(1),
            SockAddr::new(IP_B, 5001),
            32 * 1024,
            256 * 1024,
        )),
        true,
    );
    assert!(run_to_completion(&mut w, 120), "ethernet transfer stalled");
    let rx = w.hosts[1].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<TtcpReceiver>()
        .unwrap();
    assert_eq!(rx.bytes_read, 256 * 1024);
    assert_eq!(rx.verify_errors, 0);
    // Everything went through software checksums (no CAB on this path)...
    let s = &w.hosts[0].kernel.stats;
    assert!(s.sw_checksums > 0);
    assert_eq!(s.hw_checksums, 0);
    // ...and TCP segments were fragmented by IP to fit the 1500-byte MTU?
    // No: MSS derives from the connect-time route, so no fragmentation.
    assert_eq!(s.frags_sent, 0);
}

#[test]
fn loopback_transfer() {
    let mut w = World::new();
    let h = w.add_host(
        "solo",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let ip = Ipv4Addr::new(127, 0, 0, 1);
    let lo = w.hosts[h].kernel.add_loopback(ip);
    w.hosts[h].kernel.add_route(ip, 32, lo);
    w.add_app(
        h,
        Box::new(TtcpReceiver::new(TaskId(2), 5001, 64 * 1024)),
        false,
    );
    w.add_app(
        h,
        Box::new(TtcpSender::new(
            TaskId(1),
            SockAddr::new(ip, 5001),
            64 * 1024,
            512 * 1024,
        )),
        true,
    );
    assert!(run_to_completion(&mut w, 60), "loopback stalled");
    let rx = w.hosts[h].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<TtcpReceiver>()
        .unwrap();
    assert_eq!(rx.bytes_read, 512 * 1024);
    assert_eq!(rx.verify_errors, 0);
}

#[test]
fn udp_datagrams_over_cab_and_ethernet() {
    use outboard::stack::{ReadResult, WriteResult};
    // Hand-driven UDP exchange over the CAB: one datagram each way.
    let mut w = World::new();
    let a = w.add_host(
        "a",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let b = w.add_host(
        "b",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let (ip_a, ip_b) = (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    w.connect_cab(a, ip_a, b, ip_b, Dur::micros(5), 9);

    // Receiver socket on b.
    let (rx_sock, rx_task) = {
        let h = &mut w.hosts[b];
        let s = h.kernel.sys_socket(Proto::Udp);
        h.kernel.sys_bind(s, 7000).unwrap();
        h.mem.create_region(TaskId(20), 0x9000, 64 * 1024);
        (s, TaskId(20))
    };
    // Sender writes one 8 KB datagram (single-copy capable size).
    {
        let h = &mut w.hosts[a];
        let s = h.kernel.sys_socket(Proto::Udp);
        h.kernel
            .sys_connect_udp(s, SockAddr::new(ip_b, 7000))
            .unwrap();
        h.mem.create_region(TaskId(10), 0x4000, 64 * 1024);
        let data: Vec<u8> = (0..8192u32).map(|i| (i * 13) as u8).collect();
        use outboard::host::UserMemory;
        h.mem.write_user(TaskId(10), 0x4000, &data).unwrap();
        let (r, fx) = h
            .kernel
            .sys_write(s, TaskId(10), 0x4000, 8192, &mut h.mem, Time::ZERO)
            .unwrap();
        assert!(matches!(
            r,
            WriteResult::Blocked { .. } | WriteResult::Done { .. }
        ));
        let _ = h;
        w.apply_external_effects(a, fx);
    }
    w.run_until(Time::ZERO + Dur::millis(100));
    // Read it on b.
    {
        let now = w.now();
        let h = &mut w.hosts[b];
        let (r, _fx) = h
            .kernel
            .sys_read(rx_sock, rx_task, 0x9000, 64 * 1024, &mut h.mem, now)
            .unwrap();
        match r {
            ReadResult::Done { bytes } | ReadResult::BlockedDma { bytes } => {
                assert_eq!(bytes, 8192);
            }
            other => panic!("expected datagram, got {other:?}"),
        }
    }
}

#[test]
fn icmp_echo_through_the_stack() {
    // Ping b from a: build an echo request via the kernel's ICMP machinery
    // by injecting it at IP level through the in-kernel interface.
    let mut w = World::new();
    let a = w.add_host(
        "a",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let b = w.add_host(
        "b",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let (ip_a, ip_b) = (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    w.connect_cab(a, ip_a, b, ip_b, Dur::micros(5), 10);
    // Inject the request from a's kernel.
    let fx = {
        let h = &mut w.hosts[a];
        h.kernel
            .send_ping(ip_b, 0x42, 1, b"outboard ping", &mut h.mem, Time::ZERO)
    };
    w.apply_external_effects(a, fx);
    w.run_until(Time::ZERO + Dur::millis(50));
    assert_eq!(
        w.hosts[b].kernel.stats.icmp_echo_replies, 1,
        "b should reply to the echo request"
    );
    assert_eq!(
        w.hosts[a].kernel.stats.icmp_echo_replies, 0,
        "a receives a reply, not a request"
    );
    // a's kernel saw the reply arrive (rx_packets from b).
    assert!(w.hosts[a].kernel.stats.rx_packets >= 1);
}

#[test]
fn router_forwards_between_cab_and_ethernet() {
    // Three hosts: a --CAB-- r --ETH-- c. a sends TCP to c through r.
    let mut w = World::new();
    let a = w.add_host(
        "a",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let r = w.add_host(
        "r",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let c = w.add_host(
        "c",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let ip_a = Ipv4Addr::new(10, 0, 0, 1);
    let ip_r1 = Ipv4Addr::new(10, 0, 0, 254);
    let ip_r2 = Ipv4Addr::new(192, 168, 1, 254);
    let ip_c = Ipv4Addr::new(192, 168, 1, 3);
    let (if_a, _) = w.connect_cab(a, ip_a, r, ip_r1, Dur::micros(5), 21);
    let (_, if_c) = w.connect_eth(r, ip_r2, c, ip_c, 10e6, 22);
    // a routes everything via its CAB; ARP for the far subnet points at r.
    w.hosts[a].kernel.add_route(ip_c, 32, if_a);
    w.hosts[a].kernel.add_arp_hippi(if_a, ip_c, 2); // r's fabric address
                                                    // c routes back through r.
    w.hosts[c].kernel.add_route(ip_a, 32, if_c);
    use outboard::wire::ether::MacAddr;
    w.hosts[c]
        .kernel
        .add_arp_ether(if_c, ip_a, MacAddr::local((c as u8) * 2 + 1));
    // r: routes to c exist via connect_eth; ARP for the eth side of c too.

    w.add_app(
        c,
        Box::new(TtcpReceiver::new(TaskId(2), 5001, 16 * 1024)),
        true,
    );
    w.add_app(
        a,
        Box::new(TtcpSender::new(
            TaskId(1),
            SockAddr::new(ip_c, 5001),
            16 * 1024,
            128 * 1024,
        )),
        true,
    );
    assert!(run_to_completion(&mut w, 200), "routed transfer stalled");
    let rx = w.hosts[c].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<TtcpReceiver>()
        .unwrap();
    assert_eq!(rx.bytes_read, 128 * 1024);
    assert_eq!(rx.verify_errors, 0);
    // The router actually forwarded (it has no sockets of its own).
    assert!(w.hosts[r].kernel.stats.rx_packets > 0);
    assert!(w.hosts[r].kernel.stats.tx_packets > 0);
    // Fragmentation happened at the router: 32 KB-MSS segments onto a
    // 1500-byte Ethernet... no — MSS negotiation used the CAB MTU on a's
    // side but c advertised 1460, so the connection runs at 1460 and the
    // router forwards without fragmenting. Both behaviours are valid;
    // assert the invariant that c received everything intact (above).
}

/// Two simultaneous connections share one CAB: both make progress, data
/// stays intact per-connection, and the aggregate respects the adaptor's
/// SDMA limit (engines are a shared serial resource).
#[test]
fn two_connections_share_the_adaptor() {
    use outboard::sim::stats::mbps;
    let mut w = World::new();
    let a = w.add_host(
        "a",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let b = w.add_host(
        "b",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let (ip_a, ip_b) = (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
    w.connect_cab(a, ip_a, b, ip_b, outboard::sim::Dur::micros(5), 61);
    let total = 2 * 1024 * 1024;
    w.add_app(
        b,
        Box::new(TtcpReceiver::new(TaskId(2), 5001, 64 * 1024)),
        true,
    );
    w.add_app(
        b,
        Box::new(TtcpReceiver::new(TaskId(4), 5002, 64 * 1024)),
        false,
    );
    let mut tx1 = TtcpSender::new(TaskId(1), SockAddr::new(ip_b, 5001), 64 * 1024, total);
    let mut tx2 = TtcpSender::new(TaskId(3), SockAddr::new(ip_b, 5002), 64 * 1024, total);
    // Separate user buffers.
    tx2.buf_vaddr = 0x50_0000;
    tx1.buf_vaddr = 0x10_0000;
    w.add_app(a, Box::new(tx1), true);
    w.add_app(a, Box::new(tx2), false);
    let ok = run_to_completion(&mut w, 60);
    assert!(ok, "one of the connections starved");
    let elapsed = w.now() - Time::ZERO;
    for idx in [0usize, 1] {
        let rx = w.hosts[b].apps[idx]
            .as_ref()
            .unwrap()
            .as_any()
            .downcast_ref::<TtcpReceiver>()
            .unwrap();
        assert_eq!(rx.bytes_read, total, "connection {idx} incomplete");
        assert_eq!(rx.verify_errors, 0, "connection {idx} corrupted");
    }
    // Aggregate throughput cannot exceed the adaptor's effective limit.
    let agg = mbps((2 * total) as u64, elapsed);
    assert!(agg < 160.0, "aggregate {agg} Mbit/s exceeds the SDMA limit");
    assert!(agg > 80.0, "aggregate {agg} Mbit/s suspiciously low");
}

/// Routed UDP with fragmentation: an 8 KB datagram rides one 32 KB CAB
/// frame to the router, which must fragment it onto the 1500-byte Ethernet;
/// the destination reassembles and delivers intact bytes.
#[test]
fn router_fragments_large_udp() {
    use outboard::host::UserMemory;
    use outboard::stack::{Proto, ReadResult, WriteResult};
    let mut w = World::new();
    let a = w.add_host(
        "a",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let r = w.add_host(
        "r",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let c = w.add_host(
        "c",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let ip_a = Ipv4Addr::new(10, 0, 0, 1);
    let ip_r1 = Ipv4Addr::new(10, 0, 0, 254);
    let ip_r2 = Ipv4Addr::new(192, 168, 1, 254);
    let ip_c = Ipv4Addr::new(192, 168, 1, 3);
    let (if_a, _) = w.connect_cab(a, ip_a, r, ip_r1, Dur::micros(5), 81);
    let (_, if_c) = w.connect_eth(r, ip_r2, c, ip_c, 10e6, 82);
    w.hosts[a].kernel.add_route(ip_c, 32, if_a);
    w.hosts[a].kernel.add_arp_hippi(if_a, ip_c, 2);
    w.hosts[c].kernel.add_route(ip_a, 32, if_c);
    use outboard::wire::ether::MacAddr;
    w.hosts[c]
        .kernel
        .add_arp_ether(if_c, ip_a, MacAddr::local((r * 2 + 1) as u8));

    let rx_task = TaskId(30);
    let rx_sock = {
        let h = &mut w.hosts[c];
        let s = h.kernel.sys_socket(Proto::Udp);
        h.kernel.sys_bind(s, 7777).unwrap();
        h.mem.create_region(rx_task, 0x9000, 16 * 1024);
        s
    };
    let data: Vec<u8> = (0..8000u32).map(|i| (i * 5 + 2) as u8).collect();
    let fx = {
        let h = &mut w.hosts[a];
        let s = h.kernel.sys_socket(Proto::Udp);
        h.kernel
            .sys_connect_udp(s, SockAddr::new(ip_c, 7777))
            .unwrap();
        h.mem.create_region(TaskId(1), 0x4000, 16 * 1024);
        h.mem.write_user(TaskId(1), 0x4000, &data).unwrap();
        let (wr, fx) = h
            .kernel
            .sys_write(s, TaskId(1), 0x4000, 8000, &mut h.mem, Time::ZERO)
            .unwrap();
        assert!(matches!(
            wr,
            WriteResult::Blocked { .. } | WriteResult::Done { .. }
        ));
        fx
    };
    w.apply_external_effects(a, fx);
    w.run_until(Time::ZERO + Dur::millis(200));

    assert!(
        w.hosts[r].kernel.stats.frags_sent >= 5,
        "router must fragment the 8 KB datagram onto Ethernet: {}",
        w.hosts[r].kernel.stats.frags_sent
    );
    let now = w.now();
    let h = &mut w.hosts[c];
    let (rr, _fx) = h
        .kernel
        .sys_read(rx_sock, rx_task, 0x9000, 16 * 1024, &mut h.mem, now)
        .unwrap();
    match rr {
        ReadResult::Done { bytes } | ReadResult::BlockedDma { bytes } => assert_eq!(bytes, 8000),
        other => panic!("datagram lost: {other:?}"),
    }
    let mut buf = vec![0u8; 8000];
    h.mem.read_user(rx_task, 0x9000, &mut buf).unwrap();
    assert_eq!(buf, data, "routed+fragmented datagram corrupted");
}
