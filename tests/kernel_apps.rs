//! In-kernel application tests (§5): share-semantics sockets, the ordered
//! `M_WCAB` → regular conversion queue, and UDP fragmentation/reassembly.

use outboard::host::{MachineConfig, TaskId, UserMemory};
use outboard::sim::{Dur, Time};
use outboard::stack::{Proto, ReadResult, SockAddr, StackConfig, WriteResult};
use outboard::testbed::apps::{file_block_byte, FileClient, KernelFileServer};
use outboard::testbed::World;
use std::net::Ipv4Addr;

const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn cab_world() -> World {
    let mut w = World::new();
    let a = w.add_host(
        "a",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let b = w.add_host(
        "b",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    w.connect_cab(a, IP_A, b, IP_B, Dur::micros(5), 77);
    w
}

/// Boot a kernel file server on host 1 and return its socket.
fn boot_server(w: &mut World) -> outboard::stack::SockId {
    let task = TaskId(50);
    w.add_app(1, Box::new(KernelFileServer::new(task, 2049)), false);
    w.run_until(Time::ZERO + Dur::micros(200));
    let sock = w.hosts[1].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<KernelFileServer>()
        .unwrap()
        .sock
        .expect("server boots");
    w.register_kernel_sock(1, sock, task);
    sock
}

#[test]
fn file_server_serves_and_client_verifies() {
    let mut w = cab_world();
    boot_server(&mut w);
    let blocks = 16u32;
    w.add_app(
        0,
        Box::new(FileClient::new(
            TaskId(1),
            SockAddr::new(IP_B, 2049),
            blocks,
            4096,
        )),
        true,
    );
    let ok = w.run_while(Time::ZERO + Dur::secs(30), |w| {
        !w.hosts[0].apps[0]
            .as_ref()
            .map(|a| a.finished())
            .unwrap_or(true)
    });
    assert!(ok, "client never finished");
    let client = w.hosts[0].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<FileClient>()
        .unwrap();
    assert_eq!(client.blocks_received, blocks);
    assert_eq!(client.verify_errors, 0);
}

#[test]
fn large_requests_exercise_the_conversion_queue() {
    // Send a kernel-socket datagram big enough to stay outboard: the
    // server must see it only after the WCAB->regular conversion DMA.
    let mut w = cab_world();
    let server_sock = boot_server(&mut w);

    // A raw user socket on a sends an 8 KB "RD"-prefixed datagram: the
    // payload beyond the auto-DMA buffer arrives as M_WCAB.
    let task = TaskId(1);
    let fx = {
        let h = &mut w.hosts[0];
        let s = h.kernel.sys_socket(Proto::Udp);
        h.kernel
            .sys_connect_udp(s, SockAddr::new(IP_B, 2049))
            .unwrap();
        h.mem.create_region(task, 0x4000, 16 * 1024);
        let mut req = vec![0u8; 8192];
        req[..2].copy_from_slice(b"RD");
        req[2..6].copy_from_slice(&3u32.to_be_bytes());
        req[6..8].copy_from_slice(&256u16.to_be_bytes());
        h.mem.write_user(task, 0x4000, &req).unwrap();
        let (r, fx) = h
            .kernel
            .sys_write(s, task, 0x4000, 8192, &mut h.mem, Time::ZERO)
            .unwrap();
        assert!(matches!(
            r,
            WriteResult::Blocked { .. } | WriteResult::Done { .. }
        ));
        fx
    };
    w.apply_external_effects(0, fx);
    w.run_until(w.now() + Dur::millis(100));
    let server = w.hosts[1].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<KernelFileServer>()
        .unwrap();
    assert_eq!(server.requests_served, 1, "large request served");
    assert!(
        w.hosts[1].kernel.stats.wcab_to_regular > 0,
        "conversion queue must have run"
    );
    let _ = server_sock;
}

#[test]
fn fragmented_udp_datagram_reassembles() {
    // A 60 KB datagram (near UDP's 64 KB ceiling) exceeds the 32 KB MTU:
    // IP fragments it (traditional path; §4.3's per-packet checksum cannot
    // span fragments) and the receiver reassembles before UDP demux.
    let mut w = cab_world();
    let rx_task = TaskId(20);
    let (rx_sock, tx_fx) = {
        let h = &mut w.hosts[1];
        let s = h.kernel.sys_socket(Proto::Udp);
        h.kernel.sys_bind(s, 9000).unwrap();
        h.mem.create_region(rx_task, 0x9000, 128 * 1024);
        let s2 = s;
        let h = &mut w.hosts[0];
        let tx = h.kernel.sys_socket(Proto::Udp);
        h.kernel
            .sys_connect_udp(tx, SockAddr::new(IP_B, 9000))
            .unwrap();
        h.mem.create_region(TaskId(1), 0x4000, 128 * 1024);
        let data: Vec<u8> = (0..60_000u32).map(|i| (i * 7 + 1) as u8).collect();
        h.mem.write_user(TaskId(1), 0x4000, &data).unwrap();
        let (_r, fx) = h
            .kernel
            .sys_write(tx, TaskId(1), 0x4000, 60_000, &mut h.mem, Time::ZERO)
            .unwrap();
        (s2, fx)
    };
    w.apply_external_effects(0, tx_fx);
    w.run_until(w.now() + Dur::millis(200));

    assert!(
        w.hosts[0].kernel.stats.frags_sent >= 2,
        "datagram must fragment"
    );
    assert!(
        w.hosts[1].kernel.stats.frags_reassembled >= 2,
        "fragments must be counted at the receiver"
    );

    let now = w.now();
    let h = &mut w.hosts[1];
    let (r, _fx) = h
        .kernel
        .sys_read(rx_sock, rx_task, 0x9000, 128 * 1024, &mut h.mem, now)
        .unwrap();
    let bytes = match r {
        ReadResult::Done { bytes } | ReadResult::BlockedDma { bytes } => bytes,
        other => panic!("no datagram: {other:?}"),
    };
    assert_eq!(bytes, 60_000);
    let mut buf = vec![0u8; 60_000];
    h.mem.read_user(rx_task, 0x9000, &mut buf).unwrap();
    for (i, &b) in buf.iter().enumerate() {
        assert_eq!(b, (i as u32 * 7 + 1) as u8, "byte {i} corrupted");
    }
}

#[test]
fn single_copy_udp_write_blocks_until_dma() {
    // Copy semantics for UDP too (§4.4.2): an aligned large-enough datagram
    // takes the UIO path and the writer blocks until the SDMA completes.
    let mut w = cab_world();
    {
        let h = &mut w.hosts[1];
        let s = h.kernel.sys_socket(Proto::Udp);
        h.kernel.sys_bind(s, 9100).unwrap();
    }
    let h = &mut w.hosts[0];
    let s = h.kernel.sys_socket(Proto::Udp);
    h.kernel
        .sys_connect_udp(s, SockAddr::new(IP_B, 9100))
        .unwrap();
    h.mem.create_region(TaskId(1), 0x4000, 64 * 1024);
    let (r, fx) = h
        .kernel
        .sys_write(s, TaskId(1), 0x4000, 20 * 1024, &mut h.mem, Time::ZERO)
        .unwrap();
    assert!(
        matches!(r, WriteResult::Blocked { accepted } if accepted == 20 * 1024),
        "single-copy UDP write must block on DMA: {r:?}"
    );
    w.apply_external_effects(0, fx);
    // The wake arrives once the SDMA completes.
    w.run_until(w.now() + Dur::millis(50));
    assert!(w.hosts[0].kernel.stats.hw_checksums >= 1);
}

#[test]
fn kq_preserves_arrival_order_for_mixed_sizes() {
    // §5's reordering concern: a short packet (no conversion DMA) must not
    // overtake a long one (conversion in flight). Send big-then-small back
    // to back and check the server sees them in order.
    let mut w = cab_world();
    boot_server(&mut w);
    let task = TaskId(1);
    let fx = {
        let h = &mut w.hosts[0];
        let s = h.kernel.sys_socket(Proto::Udp);
        h.kernel
            .sys_connect_udp(s, SockAddr::new(IP_B, 2049))
            .unwrap();
        h.mem.create_region(task, 0x4000, 32 * 1024);
        // Big request for block 1 (goes outboard; conversion DMA needed).
        let mut big = vec![0u8; 8192];
        big[..2].copy_from_slice(b"RD");
        big[2..6].copy_from_slice(&1u32.to_be_bytes());
        big[6..8].copy_from_slice(&64u16.to_be_bytes());
        h.mem.write_user(task, 0x4000, &big).unwrap();
        let (_, mut fx) = h
            .kernel
            .sys_write(s, task, 0x4000, 8192, &mut h.mem, Time::ZERO)
            .unwrap();
        // Small request for block 2 immediately after (fits auto-DMA, no
        // conversion; must still be served second). Use a second socket so
        // the first (blocked) write doesn't conflict.
        let s2 = h.kernel.sys_socket(Proto::Udp);
        h.kernel
            .sys_connect_udp(s2, SockAddr::new(IP_B, 2049))
            .unwrap();
        h.mem.create_region(TaskId(2), 0x8000, 4096);
        let mut small = [0u8; 12];
        small[..2].copy_from_slice(b"RD");
        small[2..6].copy_from_slice(&2u32.to_be_bytes());
        small[6..8].copy_from_slice(&64u16.to_be_bytes());
        h.mem.write_user(TaskId(2), 0x8000, &small).unwrap();
        let (_, fx2) = h
            .kernel
            .sys_write(s2, TaskId(2), 0x8000, 12, &mut h.mem, Time::ZERO)
            .unwrap();
        fx.extend(fx2);
        fx
    };
    w.apply_external_effects(0, fx);
    w.run_until(w.now() + Dur::millis(100));
    let server = w.hosts[1].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<KernelFileServer>()
        .unwrap();
    assert_eq!(server.requests_served, 2);
    // Block contents differ per block; verify both replies came back to the
    // right sockets is covered elsewhere — here the serving order is what
    // matters, observable through the server's own counter ordering being
    // reached without a deadline miss (conversion completed first).
    let _ = file_block_byte(1, 0);
}

/// §5: in-kernel applications also use TCP. A user-space ttcp sender
/// streams into a kernel-owned TCP socket; the kernel consumer sees the
/// byte stream through the ordered conversion queue (large segments arrive
/// as M_WCAB and are converted by DMA before release).
#[test]
fn in_kernel_tcp_receiver() {
    use outboard::stack::Effect;
    use outboard::testbed::apps::ttcp_pattern;
    use outboard::testbed::apps::TtcpSender;

    let mut w = cab_world();
    // Kernel listener on b.
    let listener = w.hosts[1].kernel.kernel_listen(6000).unwrap();
    let _ = listener;
    w.add_app(
        0,
        Box::new(TtcpSender::new(
            TaskId(1),
            SockAddr::new(IP_B, 6000),
            64 * 1024,
            512 * 1024,
        )),
        true,
    );
    // Pump the world manually, draining the kernel queue as data becomes
    // ready (the consumer role, inline).
    let mut received: Vec<u8> = Vec::new();
    let mut child = None;
    for i in 0..100_000u64 {
        // Absolute schedule: a relative deadline would freeze the clock
        // whenever the next event (a conversion DMA completion) lies past
        // the current slice.
        w.run_until(Time::ZERO + Dur::micros(200) * (i + 1));
        if child.is_none() {
            child = w.hosts[1].kernel.kernel_accept(listener);
        }
        if let Some(c) = child {
            loop {
                let got = w.hosts[1].kernel.kernel_recv(c);
                // Releasing queue entries can make the next one ready only
                // after its conversion DMA; keep draining what's there.
                match got {
                    Some((chain, _from)) => {
                        received.extend(chain.flatten_kernel().expect("converted"));
                    }
                    None => break,
                }
            }
            // Reading freed so_rcv space: advertise the window.
            let now = w.now();
            let fx: Vec<Effect> = {
                let h = &mut w.hosts[1];
                h.kernel.kernel_window_update(c, &mut h.mem, now)
            };
            w.apply_external_effects(1, fx);
        }
        let done = w.hosts[0].apps[0]
            .as_ref()
            .map(|a| a.finished())
            .unwrap_or(true);
        if done && received.len() >= 512 * 1024 {
            break;
        }
    }
    assert_eq!(received.len(), 512 * 1024, "stream incomplete");
    for (i, &b) in received.iter().enumerate() {
        assert_eq!(b, ttcp_pattern(i), "byte {i} corrupted");
    }
    assert!(
        w.hosts[1].kernel.stats.wcab_to_regular > 0,
        "large segments must go through the conversion queue"
    );
}

/// §5: in-kernel applications over *raw IP*: a custom protocol handler
/// receives large datagrams through the conversion queue and answers with
/// kernel chains.
#[test]
fn raw_ip_kernel_protocol() {
    use bytes::Bytes;
    use outboard::mbuf::Chain;
    const PROTO: u8 = 253; // experimentation protocol number

    let mut w = cab_world();
    // Handler socket on b.
    let handler = w.hosts[1].kernel.kernel_socket(outboard::stack::Proto::Udp);
    w.hosts[1]
        .kernel
        .kernel_register_raw(PROTO, handler)
        .unwrap();
    // a sends one large raw datagram (goes outboard on the receive side).
    let payload: Vec<u8> = (0..8000u32).map(|i| (i * 11) as u8).collect();
    let fx = {
        let h = &mut w.hosts[0];
        h.kernel
            .kernel_send_raw(
                PROTO,
                IP_B,
                Chain::from_bytes(Bytes::from(payload.clone())),
                &mut h.mem,
                Time::ZERO,
            )
            .unwrap()
    };
    w.apply_external_effects(0, fx);
    w.run_until(Time::ZERO + Dur::millis(50));
    let (chain, from) = w.hosts[1]
        .kernel
        .kernel_recv(handler)
        .expect("raw datagram delivered");
    assert_eq!(from.ip, IP_A);
    assert_eq!(chain.flatten_kernel().unwrap(), payload);
    assert!(
        w.hosts[1].kernel.stats.wcab_to_regular > 0,
        "large raw datagram must convert through the queue"
    );
    // Unregistered protocols are dropped and counted.
    let now = w.now();
    let fx = {
        let h = &mut w.hosts[0];
        h.kernel
            .kernel_send_raw(254, IP_B, Chain::from_slice(&[1, 2, 3]), &mut h.mem, now)
            .unwrap()
    };
    w.apply_external_effects(0, fx);
    w.run_until(w.now() + Dur::millis(10));
    assert!(w.hosts[1].kernel.stats.no_socket_drops > 0);
}
