//! Integration tests for the single-copy data path (§3, §4): end-to-end
//! transfers through the whole simulated system, checking the *mechanisms*
//! (descriptor flow, outboard checksumming, buffer lifecycle) and not just
//! the outcomes.

use outboard::host::MachineConfig;
use outboard::sim::{Dur, Time};
use outboard::stack::{StackConfig, StackMode};
use outboard::testbed::experiment::build_ttcp_world;
use outboard::testbed::{run_ttcp, ExperimentConfig};

fn sc_config(write_size: usize, total: usize) -> ExperimentConfig {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, write_size);
    cfg.total_bytes = total;
    cfg
}

#[test]
fn bulk_transfer_delivers_exact_bytes() {
    for write_size in [3 * 1024, 32 * 1024, 200 * 1024] {
        let cfg = sc_config(write_size, 2 * 1024 * 1024);
        let m = run_ttcp(&cfg);
        assert!(m.completed, "stalled at write size {write_size}: {m:?}");
        assert_eq!(m.bytes, 2 * 1024 * 1024);
        assert_eq!(m.verify_errors, 0, "corruption at write size {write_size}");
    }
}

#[test]
fn odd_sized_writes_and_totals() {
    // Deliberately awkward: write size not a power of two, total not a
    // multiple of the write size, everything word-aligned but ragged.
    let cfg = sc_config(77 * 1024 + 4, 1_000_000);
    let m = run_ttcp(&cfg);
    assert!(m.completed);
    assert_eq!(m.bytes, 1_000_000);
    assert_eq!(m.verify_errors, 0);
}

#[test]
fn every_data_packet_uses_outboard_checksum() {
    let cfg = sc_config(64 * 1024, 1024 * 1024);
    let m = run_ttcp(&cfg);
    assert!(m.completed);
    assert!(m.hw_checksums >= 16, "hw checksums: {}", m.hw_checksums);
    assert_eq!(m.sw_checksums, 0, "single-copy path must never Read_C");
}

#[test]
fn uio_descriptors_convert_to_wcab() {
    let cfg = sc_config(64 * 1024, 1024 * 1024);
    let mut w = build_ttcp_world(&cfg);
    w.run_until(Time::ZERO + Dur::secs(10));
    let s = &w.hosts[0].kernel.stats;
    assert!(s.uio_to_wcab >= 16, "conversions: {}", s.uio_to_wcab);
    // Pages were pinned and mapped in the socket layer.
    let vm = w.hosts[0].kernel.vm.stats();
    assert!(vm.pin_calls > 0 && vm.pages_pinned > 0);
    // Eager mode releases everything once the transfer is done.
    assert_eq!(
        w.hosts[0].kernel.vm.pinned_page_count(),
        0,
        "leaked pinned pages"
    );
}

#[test]
fn outboard_buffers_are_freed_on_both_sides() {
    let cfg = sc_config(128 * 1024, 2 * 1024 * 1024);
    let mut w = build_ttcp_world(&cfg);
    w.run_until(Time::ZERO + Dur::secs(20));
    for (host, side) in [(0usize, "sender"), (1usize, "receiver")] {
        let iface = &w.hosts[host].kernel.ifaces[0];
        if let outboard::stack::driver::IfaceKind::Cab(cab) = &iface.kind {
            assert_eq!(
                cab.cab.netmem().packet_count(),
                0,
                "{side} leaked outboard packets"
            );
            assert_eq!(
                cab.cab.netmem().pages_free(),
                cab.cab.netmem().pages_total(),
                "{side} leaked outboard pages"
            );
        } else {
            panic!("expected CAB iface");
        }
    }
}

#[test]
fn unmodified_stack_still_works_over_the_cab() {
    // Interoperability baseline: same device, traditional path.
    let mut cfg = sc_config(64 * 1024, 1024 * 1024);
    cfg.stack = StackConfig::unmodified();
    let m = run_ttcp(&cfg);
    assert!(m.completed);
    assert_eq!(m.verify_errors, 0);
    assert_eq!(m.hw_checksums, 0);
    assert!(m.sw_checksums > 0);
}

#[test]
fn adaptive_path_switches_at_threshold() {
    // Below the 16 KB threshold the adaptive stack copies through kernel
    // buffers (software checksum); above, it goes single-copy.
    let mut small = ExperimentConfig::new(
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
        4 * 1024,
    );
    small.total_bytes = 256 * 1024;
    let m = run_ttcp(&small);
    assert!(m.completed);
    // In SingleCopy mode even copied data may use hw checksum insertion;
    // the real signal is the VM system: no pages pinned for small writes.
    let mut w = build_ttcp_world(&small);
    w.run_until(Time::ZERO + Dur::secs(5));
    assert_eq!(w.hosts[0].kernel.vm.stats().pages_pinned, 0);

    let mut big = small.clone();
    big.write_size = 64 * 1024;
    big.total_bytes = 1024 * 1024;
    let mut w = build_ttcp_world(&big);
    w.run_until(Time::ZERO + Dur::secs(5));
    assert!(w.hosts[0].kernel.vm.stats().pages_pinned > 0);
}

#[test]
fn misaligned_writes_fall_back_and_still_verify() {
    let mut cfg = sc_config(64 * 1024, 1024 * 1024);
    cfg.sender_misalign = 2;
    let m = run_ttcp(&cfg);
    assert!(m.completed);
    assert_eq!(m.verify_errors, 0, "fallback path corrupted data");
    let mut w = build_ttcp_world(&cfg);
    w.run_until(Time::ZERO + Dur::secs(10));
    assert!(
        w.hosts[0].kernel.stats.aligned_fallbacks > 0,
        "misaligned buffer should hit the §4.5 fallback"
    );
}

#[test]
fn single_copy_stack_mode_is_observable() {
    let cfg = sc_config(64 * 1024, 512 * 1024);
    assert_eq!(cfg.stack.mode, StackMode::SingleCopy);
    let m = run_ttcp(&cfg);
    assert!(m.completed);
    // Blocked-write semantics: one Wake per write → writes counted.
    assert_eq!(m.writes, 8);
}

#[test]
fn deterministic_across_runs() {
    let cfg = sc_config(32 * 1024, 1024 * 1024);
    let a = run_ttcp(&cfg);
    let b = run_ttcp(&cfg);
    assert_eq!(a.elapsed, b.elapsed, "simulation must be deterministic");
    assert_eq!(a.bytes, b.bytes);
    assert!((a.throughput_mbps - b.throughput_mbps).abs() < 1e-9);
}
