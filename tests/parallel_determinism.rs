//! Parallel sweeps must be byte-identical to serial runs, and the widened
//! checksum inner loop must match the scalar reference on any split.

use outboard_bench::sweep::run_sweep_jobs;
use outboard_host::MachineConfig;
use outboard_stack::StackConfig;
use outboard_testbed::{run_ttcp, ExperimentConfig, Metrics};
use outboard_wire::checksum::Accumulator;
use proptest::prelude::*;

fn experiment(
    machine: &MachineConfig,
    single_copy: bool,
    write_size: usize,
    seed: u64,
) -> ExperimentConfig {
    let stack = if single_copy {
        let mut s = StackConfig::single_copy();
        s.force_single_copy = true;
        s
    } else {
        StackConfig::unmodified()
    };
    let mut cfg = ExperimentConfig::new(machine.clone(), stack, write_size);
    cfg.total_bytes = 256 * 1024;
    cfg.verify = false;
    cfg.seed = seed;
    cfg
}

/// Render every externally-visible result of a run: the full Metrics plus
/// the report and JSON the bench binaries print/persist.
fn canon(m: &Metrics) -> String {
    format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        m.completed,
        m.elapsed,
        m.bytes,
        m.throughput_mbps,
        m.sender_utilization,
        m.receiver_utilization,
        m.sender_efficiency_mbps,
        m.receiver_efficiency_mbps,
        m.retransmits,
        m.verify_errors,
        m.writes,
        m.header_only_retransmits,
        m.hw_checksums,
        m.sw_checksums,
        m.events_dispatched,
        m.stats.report(),
        m.stats.to_json()
    )
}

/// fig5/fig6-style sweep: (machine, size, single_copy) items over multiple
/// seeds, `--jobs 1` vs `--jobs 4` must agree on every rendered byte.
#[test]
fn figure_sweeps_match_serial() {
    let machines = [
        MachineConfig::alpha_3000_400(),
        MachineConfig::alpha_3000_300lx(),
    ];
    for machine in &machines {
        for seed in [1u64, 42] {
            let items: Vec<(usize, bool)> = [1024usize, 8192]
                .iter()
                .flat_map(|&s| [(s, false), (s, true)])
                .collect();
            let f = |&(size, sc): &(usize, bool)| {
                canon(&run_ttcp(&experiment(machine, sc, size, seed)))
            };
            let serial = run_sweep_jobs("determinism-serial", 1, &items, f);
            let parallel = run_sweep_jobs("determinism-parallel", 4, &items, f);
            assert_eq!(
                serial, parallel,
                "parallel sweep diverged from serial ({}, seed {seed})",
                machine.name
            );
        }
    }
}

/// Crossover-style sweep (misalignment + window-size variants) under
/// parallel execution.
#[test]
fn crossover_sweep_matches_serial() {
    let machine = MachineConfig::alpha_3000_400();
    let items: Vec<(u64, usize)> = vec![(0, 64), (1, 64), (2, 128), (0, 512)];
    let f = |&(mis, sock_kb): &(u64, usize)| {
        let mut cfg = experiment(&machine, true, 32 * 1024, 42);
        cfg.sender_misalign = mis;
        cfg.stack.sock_buf = sock_kb * 1024;
        canon(&run_ttcp(&cfg))
    };
    let serial = run_sweep_jobs("crossover-serial", 1, &items, f);
    let parallel = run_sweep_jobs("crossover-parallel", 4, &items, f);
    assert_eq!(serial, parallel);
}

/// Repeated parallel executions of the same sweep agree with each other
/// (no run-to-run scheduling sensitivity).
#[test]
fn parallel_sweep_is_stable_across_executions() {
    let machine = MachineConfig::alpha_3000_400();
    let items: Vec<usize> = vec![1024, 4096, 16384];
    let f = |&size: &usize| canon(&run_ttcp(&experiment(&machine, true, size, 7)));
    let a = run_sweep_jobs("stability-a", 4, &items, f);
    let b = run_sweep_jobs("stability-b", 4, &items, f);
    assert_eq!(a, b);
}

/// Satellite regression: the lazy overflow fold must survive > 4 GB of
/// accumulated data (the old eager guard folded per call; the new one
/// folds only near the u64 boundary — and the 16-bit result must still
/// be exact). 0xFF bytes are the worst case: every lane adds the maximum.
#[test]
fn checksum_survives_4gb_accumulated_length() {
    let block = vec![0xFFu8; 8 * 1024 * 1024];
    let mut acc = Accumulator::new();
    let adds = 513; // 513 * 8 MiB = 4.008 GiB > 4 GiB
    for _ in 0..adds {
        acc.add_bytes(&block);
    }
    assert_eq!(acc.len(), adds * block.len());
    // All-ones data sums to the all-ones partial regardless of length.
    assert_eq!(acc.partial(), 0xFFFF);
}

/// The >4 GB path with mixed data and odd splits: wide and scalar agree.
#[test]
fn checksum_wide_matches_scalar_past_4gb() {
    let block: Vec<u8> = (0..(8 * 1024 * 1024 + 1))
        .map(|i| (i * 131 + 17) as u8)
        .collect();
    let mut wide = Accumulator::new();
    let mut scalar = Accumulator::new();
    for _ in 0..513 {
        wide.add_bytes(&block);
        scalar.add_bytes_scalar(&block);
    }
    assert_eq!(wide.len(), scalar.len());
    assert!(wide.len() > 4 * 1024 * 1024 * 1024usize);
    assert_eq!(wide.partial(), scalar.partial());
}

proptest! {
    /// Wide-lane checksum == scalar reference for arbitrary data fed as
    /// arbitrary split boundaries (odd-byte carries cross call edges).
    #[test]
    fn wide_equals_scalar_on_arbitrary_splits(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(0usize..2048, 0..8),
    ) {
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (data.len() + 1)).collect();
        bounds.push(0);
        bounds.push(data.len());
        bounds.sort_unstable();
        let mut wide = Accumulator::new();
        let mut scalar = Accumulator::new();
        for w in bounds.windows(2) {
            wide.add_bytes(&data[w[0]..w[1]]);
            scalar.add_bytes_scalar(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(wide.partial(), scalar.partial());
        prop_assert_eq!(wide.len(), data.len());
        prop_assert_eq!(scalar.len(), data.len());
    }
}
