//! Windowed-telemetry integration tests: timeline determinism (same seed,
//! heap vs wheel engine), exact conservation against the final registry
//! counters under the fault matrix, counter-track merging into the span
//! trace, flight-recorder dumps on chaos failures, and silence (no
//! `world.timeline.*` keys, byte-identical outputs) when disabled.

use outboard::host::MachineConfig;
use outboard::sim::chaos::json;
use outboard::sim::chaos::{ChaosAction, ChaosEvent, ChaosSchedule};
use outboard::sim::{Dur, EngineKind};
use outboard::stack::StackConfig;
use outboard::testbed::chaos::{run_chaos, DEFAULT_LIVENESS_BUDGET};
use outboard::testbed::{run_ttcp, ExperimentConfig, Metrics};

const TOTAL: usize = 1024 * 1024;

fn sampled(seed: u64, faults: bool, trace: bool, engine: Option<EngineKind>) -> Metrics {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = TOTAL;
    cfg.seed = seed;
    cfg.timeline_enabled = true;
    cfg.trace_spans = trace;
    if let Some(kind) = engine {
        cfg.engine = kind;
    }
    if faults {
        cfg.drop_p = 0.01;
        cfg.cab_alloc_fail_p = 0.02;
        cfg.cab_sdma_fail_p = 0.01;
        cfg.cab_mdma_fail_p = 0.01;
        cfg.cab_wedge_p = 0.05;
    }
    run_ttcp(&cfg)
}

/// Pull `(name, kind, base, final, sum)` for every series out of a
/// timeline JSON document.
fn series_facts(tl_json: &str) -> Vec<(String, String, i64, i64, i64)> {
    let doc = json::parse(tl_json).expect("timeline JSON must parse");
    let obj = doc.as_object().expect("timeline is an object");
    assert_eq!(
        json::get(obj, "schema").and_then(|v| v.as_str()),
        Some("outboard-timeline-v1")
    );
    let series = json::get(obj, "series")
        .and_then(|v| v.as_array())
        .expect("series array");
    series
        .iter()
        .map(|s| {
            let f = s.as_object().expect("series object");
            let int = |key: &str| {
                json::get(f, key)
                    .and_then(|v| v.as_f64())
                    .unwrap_or_else(|| panic!("series missing {key}")) as i64
            };
            (
                json::get(f, "name")
                    .and_then(|v| v.as_str())
                    .unwrap()
                    .to_string(),
                json::get(f, "kind")
                    .and_then(|v| v.as_str())
                    .unwrap()
                    .to_string(),
                int("base"),
                int("final"),
                int("sum"),
            )
        })
        .collect()
}

#[test]
fn same_seed_timelines_are_byte_identical() {
    let a = sampled(7, true, false, None);
    let b = sampled(7, true, false, None);
    let (ta, tb) = (a.timeline_json.unwrap(), b.timeline_json.unwrap());
    assert!(ta.contains("outboard-timeline-v1"));
    assert_eq!(ta, tb, "same seed must produce byte-identical timelines");
    assert_eq!(a.timeline_csv.unwrap(), b.timeline_csv.unwrap());
    assert_eq!(a.stats.to_json(), b.stats.to_json());
}

#[test]
fn heap_and_wheel_engines_agree_on_timelines() {
    let wheel = sampled(13, true, false, Some(EngineKind::Wheel));
    let heap = sampled(13, true, false, Some(EngineKind::Heap));
    assert_eq!(
        wheel.timeline_json.unwrap(),
        heap.timeline_json.unwrap(),
        "engines must sample identical timelines"
    );
    assert_eq!(wheel.stats.to_json(), heap.stats.to_json());
}

#[test]
fn window_delta_sums_equal_final_registry_counters_under_faults() {
    let m = sampled(17, true, false, None);
    let facts = series_facts(m.timeline_json.as_ref().unwrap());
    assert!(facts.len() >= 10, "expected 10 series, got {}", facts.len());
    for (name, kind, base, final_v, sum) in &facts {
        if kind == "counter" {
            assert_eq!(
                base + sum,
                *final_v,
                "conservation broken for {name}: base {base} + sum {sum} != final {final_v}"
            );
        }
    }
    // Cross-check the timeline's final values against the registry's own
    // end-of-run counters: the same quantities through a different path.
    let find = |n: &str| {
        facts
            .iter()
            .find(|(name, ..)| name == n)
            .unwrap_or_else(|| panic!("missing series {n}"))
    };
    let retrans = find("host0.retransmits");
    assert_eq!(
        retrans.3 as u64,
        m.stats.counter_value("host0.tcp.retransmit_segs"),
        "timeline final must equal the registry's retransmit counter"
    );
    assert_eq!(
        retrans.3 as u64, m.retransmits,
        "and the Metrics-level retransmit count"
    );
    let faults = find("world.faults");
    let reg_faults = m.stats.counter_value("world.faults.dropped")
        + m.stats.counter_value("world.faults.corrupted")
        + m.stats.counter_value("world.faults.reordered")
        + m.stats.counter_value("world.faults.duplicated")
        + m.stats.counter_value("world.faults.stealth_corrupted")
        + m.stats.counter_value("world.chaos.down_drops");
    assert_eq!(
        faults.3 as u64, reg_faults,
        "timeline world.faults must match the registry's fault totals"
    );
    assert!(faults.3 > 0, "the fault matrix must actually inject faults");
    // The registry publishes the sampler's own accounting while enabled.
    assert!(m.stats.counter_value("world.timeline.windows") > 0);
    assert_eq!(m.stats.counter_value("world.timeline.series"), 10);
    assert_eq!(m.stats.counter_value("world.timeline.window_ns"), 1_000_000);
}

#[test]
fn counter_tracks_merge_into_the_span_trace() {
    let m = sampled(7, false, true, None);
    let trace = m.trace_json.as_ref().expect("traced run exports JSON");
    let c_events = trace.matches("\"ph\":\"C\"").count();
    assert!(
        c_events >= 6,
        "expected counter-track events in the merged trace, got {c_events}"
    );
    for name in [
        "host0.tx_bytes",
        "host0.netmem_pages",
        "host0.retransmits",
        "host0.engine_busy_ns",
        "host1.tx_bytes",
        "world.pool_in_use",
        "world.faults",
    ] {
        assert!(
            trace.contains(&format!("\"name\":\"{name}\"")),
            "trace missing counter track {name}"
        );
    }
    // Counter events share the span pid space: world-wide tracks sit on
    // the fabric pid (2 in the two-host world).
    assert!(trace.contains("\"ph\":\"C\",\"pid\":2"));
    // And span slices are still there alongside.
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("\"ph\":\"M\""));
}

#[test]
fn disabled_timeline_is_silent_and_byte_identical() {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = TOTAL;
    cfg.seed = 7;
    cfg.trace_spans = true;
    let off = run_ttcp(&cfg);
    assert!(off.timeline_json.is_none());
    assert!(off.timeline_csv.is_none());
    assert!(off.timeline_summary.is_none());
    assert!(
        !off.stats.to_json().contains("world.timeline"),
        "disabled runs must not publish world.timeline.* keys"
    );
    assert!(
        !off.trace_json.as_ref().unwrap().contains("\"ph\":\"C\""),
        "disabled runs must not emit counter tracks"
    );
    // Enabling the sampler must not perturb the simulation itself: the
    // event stream, counters, and span trace stay byte-identical; only
    // the gated world.timeline.* keys are added.
    let on = sampled(7, false, true, None);
    assert_eq!(off.events_dispatched, on.events_dispatched);
    assert_eq!(off.retransmits, on.retransmits);
    assert_eq!(off.elapsed, on.elapsed);
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("world.timeline."))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&off.stats.to_json()),
        strip(&on.stats.to_json()),
        "sampling must not change any non-timeline metric"
    );
}

#[test]
fn sparklines_summarize_every_series() {
    let m = sampled(7, false, false, None);
    let s = m.timeline_summary.unwrap();
    assert!(s.starts_with("timeline:"));
    // Header plus one row per series.
    assert_eq!(s.lines().count(), 11, "summary:\n{s}");
    assert!(s.contains("host0.tx_bytes"));
    assert!(s.contains("world.pool_in_use"));
}

#[test]
fn chaos_failure_dumps_a_consistent_flight_recorder() {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = TOTAL;
    cfg.seed = 5;
    cfg.verify = true;
    cfg.timeline_enabled = true;
    cfg.timeline_export = false;
    // A checksum-preserving corruption the oracle must catch.
    let schedule = ChaosSchedule {
        seed: 5,
        events: vec![ChaosEvent {
            at: Dur::millis(8),
            action: ChaosAction::StealthCorrupt { host: 0 },
        }],
    };
    let outcome = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
    assert!(!outcome.passed(), "the planted bug must be caught");
    let flight = outcome
        .flight_json
        .as_ref()
        .expect("failed chaos runs dump a flight recorder");
    let doc = json::parse(flight).expect("flight JSON must parse");
    let obj = doc.as_object().unwrap();
    assert_eq!(
        json::get(obj, "schema").and_then(|v| v.as_str()),
        Some("outboard-flight-v1")
    );
    assert_eq!(json::get(obj, "seed").and_then(|v| v.as_u64()), Some(5));
    let violations = json::get(obj, "violations")
        .and_then(|v| v.as_array())
        .unwrap();
    assert_eq!(violations.len(), outcome.violations.len());
    assert!(violations[0].as_str().unwrap().starts_with("integrity"));
    // The embedded timeline fragment conserves and its last-window state
    // is consistent with the violation: the stealth corruption surfaces
    // in the world.faults series.
    let tl = json::get(obj, "timeline")
        .and_then(|v| v.as_object())
        .unwrap();
    let series = json::get(tl, "series").and_then(|v| v.as_array()).unwrap();
    let mut saw_faults = false;
    for s in series {
        let f = s.as_object().unwrap();
        let name = json::get(f, "name").and_then(|v| v.as_str()).unwrap();
        let kind = json::get(f, "kind").and_then(|v| v.as_str()).unwrap();
        let base = json::get(f, "base").and_then(|v| v.as_f64()).unwrap() as i64;
        let final_v = json::get(f, "final").and_then(|v| v.as_f64()).unwrap() as i64;
        let sum = json::get(f, "sum").and_then(|v| v.as_f64()).unwrap() as i64;
        if kind == "counter" {
            assert_eq!(base + sum, final_v, "flight fragment conservation: {name}");
        }
        if name == "world.faults" {
            saw_faults = true;
            assert!(
                final_v >= 1,
                "the stealth corruption must appear in world.faults"
            );
        }
    }
    assert!(saw_faults);
    // The span tail rides along (empty here — spans were not enabled —
    // but structurally present).
    let spans = json::get(obj, "spans").and_then(|v| v.as_object()).unwrap();
    assert!(json::get(spans, "recorded").is_some());
    assert!(json::get(spans, "tail").is_some());
    // Passing runs stay flight-free.
    let clean = run_chaos(
        &cfg,
        &ChaosSchedule {
            seed: 6,
            events: vec![],
        },
        DEFAULT_LIVENESS_BUDGET,
    );
    assert!(clean.passed(), "{:?}", clean.violations);
    assert!(clean.flight_json.is_none());
}
