//! The lint's own acceptance gates, run as part of tier-1:
//!
//! 1. the fixture self-check (every rule fires on a known-bad snippet and
//!    stays quiet on the matching known-good one), and
//! 2. a full scan of this repository, which must be clean — the same gate
//!    CI enforces with `outboard-lint --workspace --deny-all`.

use std::path::Path;

#[test]
fn fixture_self_check_passes() {
    let checked = outboard_lint::self_check().expect("lint self-check failed");
    assert!(checked >= 20, "suspiciously few fixtures: {checked}");
}

#[test]
fn workspace_scan_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (files, findings) = outboard_lint::scan_workspace(root).expect("scan");
    assert!(
        files >= 60,
        "scanner saw only {files} files; did the walk break?"
    );
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        outboard_lint::render_human(files, &findings)
    );
}

#[test]
fn json_report_is_well_formed_enough_to_grep() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (files, findings) = outboard_lint::scan_workspace(root).expect("scan");
    let json = outboard_lint::render_json(root, files, &findings);
    assert!(json.starts_with('{') && json.ends_with("}\n"));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"findings\""));
}
