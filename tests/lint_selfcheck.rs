//! The lint's own acceptance gates, run as part of tier-1:
//!
//! 1. the fixture self-check (every rule fires on a known-bad snippet and
//!    stays quiet on the matching known-good one),
//! 2. a full graph-scoped scan of this repository, which must be clean —
//!    the same gate CI enforces with `outboard-lint --workspace --deny-all`,
//! 3. the demonstration that reachability scoping catches what the PR-4
//!    file-list scoping structurally could not, and
//! 4. shape checks on the machine-readable reports (JSON v2, SARIF 2.1.0).

use std::path::Path;

use outboard_lint::ScanOptions;

fn graph_opts() -> ScanOptions {
    ScanOptions::default()
}

fn legacy_opts() -> ScanOptions {
    ScanOptions {
        graph: false,
        ..ScanOptions::default()
    }
}

#[test]
fn fixture_self_check_passes() {
    let checked = outboard_lint::self_check().expect("lint self-check failed");
    assert!(checked >= 20, "suspiciously few fixtures: {checked}");
}

#[test]
fn fixture_suite_grew_past_the_pr4_baseline() {
    // PR 4 shipped 39 fixtures; the interprocedural layer must add its own.
    assert!(
        outboard_lint::fixture_count() > 39,
        "fixture suite shrank to {}",
        outboard_lint::fixture_count()
    );
}

#[test]
fn workspace_scan_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (files, findings) = outboard_lint::scan_workspace(root, &graph_opts()).expect("scan");
    assert!(
        files >= 60,
        "scanner saw only {files} files; did the walk break?"
    );
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        outboard_lint::render_human(files, &findings)
    );
}

/// The acceptance demonstration: a panic in a helper file that the PR-4
/// `HOT_PATH_FILES` list never named. File-list scoping is structurally
/// blind to it; the call graph follows `sys_write` into the helper and
/// flags it, witness chain attached.
#[test]
fn call_graph_catches_panic_the_file_list_misses() {
    let inputs = [
        (
            "crates/core/src/output.rs".to_string(),
            "pub fn sys_write(n: usize) -> usize { crate::scatter::finish(n) }\n".to_string(),
        ),
        (
            "crates/core/src/scatter.rs".to_string(),
            "pub fn finish(n: usize) -> usize { n.checked_mul(2).unwrap() }\n".to_string(),
        ),
    ];

    let legacy = outboard_lint::scan_files(&inputs, &legacy_opts());
    assert!(
        legacy.iter().all(|f| f.rule != "panic-hot-path"),
        "file-list scoping should not reach scatter.rs: {legacy:?}"
    );

    let graph = outboard_lint::scan_files(&inputs, &graph_opts());
    let hit: Vec<_> = graph
        .iter()
        .filter(|f| f.rule == "panic-hot-path")
        .collect();
    assert_eq!(
        hit.len(),
        1,
        "graph scoping should flag the helper: {graph:?}"
    );
    let f = hit[0];
    assert_eq!(f.file, "crates/core/src/scatter.rs");
    let names: Vec<&str> = f.chain.iter().map(|h| h.name.as_str()).collect();
    assert_eq!(
        names,
        ["output::sys_write", "scatter::finish"],
        "witness chain should walk root -> helper"
    );
}

#[test]
fn json_v2_report_round_trips_key_fields() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (files, findings) = outboard_lint::scan_workspace(root, &graph_opts()).expect("scan");
    let json = outboard_lint::render_json(root, files, &findings);
    assert!(json.starts_with('{') && json.ends_with("}\n"));
    assert!(json.contains("\"version\": \"outboard-lint-v2\""));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"findings\""));
}

#[test]
fn sarif_report_has_the_2_1_0_shape_and_chains() {
    // Scan the demonstration pair so at least one chained finding exists.
    let inputs = [
        (
            "crates/core/src/output.rs".to_string(),
            "pub fn sys_write(n: usize) -> usize { crate::scatter::finish(n) }\n".to_string(),
        ),
        (
            "crates/core/src/scatter.rs".to_string(),
            "pub fn finish(n: usize) -> usize { n.checked_mul(2).unwrap() }\n".to_string(),
        ),
    ];
    let findings = outboard_lint::scan_files(&inputs, &graph_opts());
    assert!(!findings.is_empty());
    let sarif = outboard_lint::render_sarif(&findings);
    for key in [
        "\"version\": \"2.1.0\"",
        "\"runs\"",
        "\"tool\"",
        "\"driver\"",
        "\"outboard-lint\"",
        "\"results\"",
        "\"locations\"",
        "\"codeFlows\"",
        "\"threadFlows\"",
    ] {
        assert!(sarif.contains(key), "SARIF report missing {key}:\n{sarif}");
    }
    // Every reachability-scoped finding carries its witness chain.
    for f in findings.iter().filter(|f| f.rule == "panic-hot-path") {
        assert!(!f.chain.is_empty(), "finding {} lost its chain", f.id());
    }
}
