//! Deeper protocol-behaviour tests: the §4.1 mid-connection interface
//! switch, zero-window flow control, partial reads splitting outboard
//! descriptors, and the CPU-accounting methodology.

use outboard::host::{MachineConfig, TaskId, UserMemory};
use outboard::sim::{Dur, Time};
use outboard::stack::{SockAddr, StackConfig};
use outboard::testbed::apps::{ttcp_pattern, TtcpReceiver, TtcpSender};
use outboard::testbed::World;
use std::net::Ipv4Addr;

const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn finished(w: &World) -> bool {
    w.hosts.iter().all(|h| {
        h.apps
            .iter()
            .all(|a| a.as_ref().map(|a| a.finished()).unwrap_or(true))
    })
}

/// §4.1: "it is possible for the interface that is used for a given
/// destination to change over time" — the reason a single stack exists.
/// Start a transfer over the CAB, then re-point the route at a
/// conventional Ethernet mid-connection. The driver's conversion layer
/// (M_UIO/M_WCAB → regular) and IP fragmentation (32 KB segments onto a
/// 1500-byte MTU) must carry the connection to completion.
#[test]
fn mid_connection_interface_switch() {
    let mut w = World::new();
    let a = w.add_host(
        "a",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let b = w.add_host(
        "b",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let (_cab_a, _cab_b) = w.connect_cab(a, IP_A, b, IP_B, Dur::micros(5), 31);
    // A parallel Ethernet between the same hosts, with *different* IPs so
    // connect_eth's routes don't clobber the CAB ones.
    let (eth_a, eth_b) = w.connect_eth(
        a,
        Ipv4Addr::new(192, 168, 0, 1),
        b,
        Ipv4Addr::new(192, 168, 0, 2),
        10e6,
        32,
    );
    // b must also accept IP_B traffic arriving over Ethernet: its eth iface
    // is a different IP, but ip_input accepts any local iface IP. Give b a
    // return route for IP_A via Ethernet only after the switch (below).

    w.add_app(
        b,
        Box::new(TtcpReceiver::new(TaskId(2), 5001, 64 * 1024)),
        true,
    );
    w.add_app(
        a,
        Box::new(TtcpSender::new(
            TaskId(1),
            SockAddr::new(IP_B, 5001),
            64 * 1024,
            1024 * 1024,
        )),
        true,
    );
    // Let roughly a third of the transfer happen over the CAB.
    w.run_until(Time::ZERO + Dur::millis(30));
    assert!(!finished(&w), "transfer should still be in flight");

    // The switch: IP_B now routes over Ethernet on a; IP_A over Ethernet
    // on b. ARP entries for the cross-subnet addresses.
    use outboard::wire::ether::MacAddr;
    w.hosts[a].kernel.routes.clear();
    w.hosts[a].kernel.add_route(IP_B, 32, eth_a);
    w.hosts[a]
        .kernel
        .add_arp_ether(eth_a, IP_B, MacAddr::local((b * 2 + 2) as u8));
    w.hosts[b].kernel.routes.clear();
    w.hosts[b].kernel.add_route(IP_A, 32, eth_b);
    w.hosts[b]
        .kernel
        .add_arp_ether(eth_b, IP_A, MacAddr::local((a * 2 + 1) as u8));

    // 1 MB over 10 Mbit/s needs ~1 s; allow slack for retransmission of
    // anything lost in the switch window.
    let ok = w.run_while(Time::ZERO + Dur::secs(60), |w| !finished(w));
    assert!(ok, "transfer did not survive the interface switch");
    let rx = w.hosts[b].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<TtcpReceiver>()
        .unwrap();
    assert_eq!(rx.bytes_read, 1024 * 1024);
    assert_eq!(rx.verify_errors, 0, "switch corrupted the stream");
    let s = &w.hosts[a].kernel.stats;
    assert!(s.hw_checksums > 0, "first phase used the CAB");
    assert!(s.sw_checksums > 0, "second phase used software checksums");
    assert!(
        s.frags_sent > 0,
        "32 KB-MSS segments must fragment onto the 1500-byte MTU"
    );
    assert!(
        s.uio_to_regular > 0 || s.wcab_to_regular > 0,
        "the conversion layer must have run at the Ethernet driver"
    );
}

/// Zero-window flow control: a receiver that accepts but does not read
/// closes the window; the sender stalls, then resumes as reads drain the
/// buffer (window updates + probes).
#[test]
fn zero_window_stall_and_recovery() {
    use outboard::stack::{Proto, ReadResult};
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut w = World::new();
    let a = w.add_host("a", MachineConfig::alpha_3000_400(), stack.clone());
    let b = w.add_host("b", MachineConfig::alpha_3000_400(), stack);
    w.connect_cab(a, IP_A, b, IP_B, Dur::micros(5), 41);

    // Hand-rolled listener on b that never reads (yet).
    let listener = {
        let h = &mut w.hosts[b];
        let s = h.kernel.sys_socket(Proto::Tcp);
        h.kernel.sys_bind(s, 5001).unwrap();
        h.kernel.sys_listen(s).unwrap();
        s
    };
    w.add_app(
        a,
        Box::new(TtcpSender::new(
            TaskId(1),
            SockAddr::new(IP_B, 5001),
            128 * 1024,
            2 * 1024 * 1024, // 4x the 512 KB window: must stall
        )),
        true,
    );
    // Run until the sender is fully stalled against the closed window.
    w.run_until(Time::ZERO + Dur::millis(200));
    let conn = {
        let h = &mut w.hosts[b];
        h.kernel
            .sys_accept(listener, TaskId(2))
            .unwrap()
            .expect("connection established")
    };
    {
        let s = w.hosts[b].kernel.socket_ref(conn).unwrap();
        assert_eq!(s.so_rcv.space(), 0, "receive buffer must be full");
    }
    let tx_done_before = w.hosts[0].apps[0].as_ref().unwrap().finished();
    assert!(
        !tx_done_before,
        "sender cannot finish against a closed window"
    );

    // Drain by reading; each read frees space and advertises a new window.
    let rx_task = TaskId(2);
    w.hosts[b].mem.create_region(rx_task, 0x9000, 64 * 1024);
    let mut got = 0usize;
    let mut pending: Option<usize> = None;
    for _ in 0..4000 {
        if got >= 2 * 1024 * 1024 {
            break;
        }
        if let Some(bytes) = pending.take() {
            got += bytes;
        }
        let now = w.now();
        let res = {
            let h = &mut w.hosts[b];
            h.kernel
                .sys_read(conn, rx_task, 0x9000, 64 * 1024, &mut h.mem, now)
        };
        match res {
            Ok((r, fx)) => {
                w.apply_external_effects(b, fx);
                match r {
                    ReadResult::Done { bytes } => got += bytes,
                    ReadResult::BlockedDma { bytes } => {
                        pending = Some(bytes);
                    }
                    ReadResult::WouldBlock => {}
                    ReadResult::Eof => break,
                }
            }
            Err(outboard::stack::StackError::InvalidState(_)) => {
                // Copy-out DMA still in flight; give it time below.
                assert!(pending.is_some());
            }
            Err(e) => panic!("read failed: {e}"),
        }
        // Let DMAs, ACKs and the sender's refills progress (a 64 KB
        // copy-out takes ~3.5 ms at the SDMA rate).
        w.run_until(w.now() + Dur::millis(10));
    }
    assert_eq!(got, 2 * 1024 * 1024, "drain incomplete");
    let ok = w.run_while(Time::ZERO + Dur::secs(120), |w| {
        !w.hosts[0].apps[0]
            .as_ref()
            .map(|ap| ap.finished())
            .unwrap_or(true)
    });
    assert!(ok, "sender never finished after the window reopened");
}

/// Partial reads split outboard descriptors: read a 24 KB segment's worth
/// of data in ragged 5000-byte chunks; every chunk must verify.
#[test]
fn ragged_partial_reads() {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut w = World::new();
    let a = w.add_host("a", MachineConfig::alpha_3000_400(), stack.clone());
    let b = w.add_host("b", MachineConfig::alpha_3000_400(), stack);
    w.connect_cab(a, IP_A, b, IP_B, Dur::micros(5), 43);
    // Receiver reads in 5000-byte chunks (not word-multiple, so some
    // copy-outs land on unaligned user addresses -> §4.5 kernel-bounce).
    w.add_app(b, Box::new(TtcpReceiver::new(TaskId(2), 5001, 5000)), true);
    w.add_app(
        a,
        Box::new(TtcpSender::new(
            TaskId(1),
            SockAddr::new(IP_B, 5001),
            24 * 1024,
            480 * 1024,
        )),
        true,
    );
    let ok = w.run_while(Time::ZERO + Dur::secs(60), |w| !finished(w));
    assert!(ok, "ragged-read transfer stalled");
    let rx = w.hosts[b].apps[0]
        .as_ref()
        .unwrap()
        .as_any()
        .downcast_ref::<TtcpReceiver>()
        .unwrap();
    assert_eq!(rx.bytes_read, 480 * 1024);
    assert_eq!(rx.verify_errors, 0);
    assert!(rx.reads >= 480 * 1024 / 5000, "reads actually split");
}

/// The §7.1 accounting methodology end to end: busy time splits into
/// ttcp(user)+ttcp(sys)+util(sys) and utilization is their share of
/// non-background time.
#[test]
fn cpu_accounting_follows_the_papers_formula() {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut w = World::new();
    let a = w.add_host("a", MachineConfig::alpha_3000_400(), stack.clone());
    let b = w.add_host("b", MachineConfig::alpha_3000_400(), stack);
    w.connect_cab(a, IP_A, b, IP_B, Dur::micros(5), 47);
    w.add_app(
        b,
        Box::new(TtcpReceiver::new(TaskId(2), 5001, 64 * 1024)),
        true,
    );
    w.add_app(
        a,
        Box::new(TtcpSender::new(
            TaskId(1),
            SockAddr::new(IP_B, 5001),
            64 * 1024,
            1024 * 1024,
        )),
        true,
    );
    let ok = w.run_while(Time::ZERO + Dur::secs(30), |w| !finished(w));
    assert!(ok);
    let elapsed = w.now() - Time::ZERO;
    let acct = w.hosts[a].cpu.acct;
    // All three buckets were exercised.
    assert!(acct.ttcp_user.as_nanos() > 0, "user loop time");
    assert!(acct.ttcp_sys.as_nanos() > 0, "syscall time");
    assert!(
        acct.util_sys.as_nanos() > 0,
        "interrupts while ttcp blocked"
    );
    assert_eq!(
        acct.busy,
        acct.ttcp_user + acct.ttcp_sys + acct.util_sys,
        "every charged cycle lands in exactly one bucket"
    );
    // Utilization matches the formula by hand.
    let comm = (acct.ttcp_user + acct.ttcp_sys + acct.util_sys).as_secs_f64();
    let avail = elapsed.as_secs_f64() * (1.0 - 0.075);
    let expect = comm / (comm + (avail - comm).max(0.0));
    let got = acct.utilization(elapsed, 0.075);
    assert!((got - expect).abs() < 1e-12);
    // Sanity: pattern function is pure.
    assert_eq!(ttcp_pattern(0), ttcp_pattern(0));
}

/// The receive path honours word alignment of the *destination* too: an
/// odd-offset user buffer still gets correct data via the kernel bounce.
#[test]
fn unaligned_receive_buffer() {
    // Hand-driven: send one 8 KB UDP datagram, read into vaddr % 4 != 0.
    use outboard::stack::{Proto, ReadResult, WriteResult};
    let mut w = World::new();
    let a = w.add_host(
        "a",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    let b = w.add_host(
        "b",
        MachineConfig::alpha_3000_400(),
        StackConfig::single_copy(),
    );
    w.connect_cab(a, IP_A, b, IP_B, Dur::micros(5), 53);
    let rx_task = TaskId(20);
    let rx_sock = {
        let h = &mut w.hosts[b];
        let s = h.kernel.sys_socket(Proto::Udp);
        h.kernel.sys_bind(s, 9000).unwrap();
        h.mem.create_region(rx_task, 0x9000, 32 * 1024);
        s
    };
    let data: Vec<u8> = (0..8192u32).map(|i| (i ^ 0xA5) as u8).collect();
    let fx = {
        let h = &mut w.hosts[a];
        let s = h.kernel.sys_socket(Proto::Udp);
        h.kernel
            .sys_connect_udp(s, SockAddr::new(IP_B, 9000))
            .unwrap();
        h.mem.create_region(TaskId(1), 0x4000, 32 * 1024);
        h.mem.write_user(TaskId(1), 0x4000, &data).unwrap();
        let (r, fx) = h
            .kernel
            .sys_write(s, TaskId(1), 0x4000, 8192, &mut h.mem, Time::ZERO)
            .unwrap();
        assert!(matches!(
            r,
            WriteResult::Blocked { .. } | WriteResult::Done { .. }
        ));
        fx
    };
    w.apply_external_effects(a, fx);
    w.run_until(Time::ZERO + Dur::millis(100));

    let now = w.now();
    let dst = 0x9000 + 2; // deliberately unaligned
    let (r, fx) = {
        let h = &mut w.hosts[b];
        h.kernel
            .sys_read(rx_sock, rx_task, dst, 32 * 1024 - 2, &mut h.mem, now)
            .unwrap()
    };
    w.apply_external_effects(b, fx);
    w.run_until(w.now() + Dur::millis(50));
    match r {
        ReadResult::Done { bytes } | ReadResult::BlockedDma { bytes } => assert_eq!(bytes, 8192),
        other => panic!("{other:?}"),
    }
    let mut buf = vec![0u8; 8192];
    w.hosts[b].mem.read_user(rx_task, dst, &mut buf).unwrap();
    assert_eq!(buf, data, "unaligned receive corrupted data");
    assert!(w.hosts[b].kernel.stats.aligned_fallbacks > 0);
}

/// The §4.5 align-split extension (the paper's "we have not implemented
/// this optimization"): a misaligned large write sends a short copied
/// fragment to realign and DMAs the rest — recovering most of the
/// single-copy efficiency a misaligned buffer would otherwise lose.
#[test]
fn align_split_extension_recovers_efficiency() {
    use outboard::testbed::{run_ttcp, ExperimentConfig};
    let mk = |align_split: bool| {
        let mut stack = StackConfig::single_copy();
        stack.force_single_copy = true;
        stack.align_split = align_split;
        // Large writes: the paper expects the split to "pay off for very
        // large writes" (the extra short packet amortizes).
        let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 256 * 1024);
        cfg.total_bytes = 4 * 1024 * 1024;
        cfg.sender_misalign = 2;
        run_ttcp(&cfg)
    };
    let fallback = mk(false);
    let split = mk(true);
    assert!(fallback.completed && split.completed);
    assert_eq!(fallback.verify_errors, 0);
    assert_eq!(split.verify_errors, 0, "align-split corrupted the stream");
    assert!(
        split.sender_efficiency_mbps > fallback.sender_efficiency_mbps * 1.2,
        "align-split {:.0} should beat the copy fallback {:.0}",
        split.sender_efficiency_mbps,
        fallback.sender_efficiency_mbps
    );
    // Mechanism check: the extension actually ran.
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    stack.align_split = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = 512 * 1024;
    cfg.sender_misalign = 2;
    let mut w = outboard::testbed::experiment::build_ttcp_world(&cfg);
    w.run_until(Time::ZERO + Dur::secs(10));
    assert!(w.hosts[0].kernel.stats.align_splits > 0);
    assert_eq!(w.hosts[0].kernel.stats.aligned_fallbacks, 0);
}

/// One listener, several sequential connections: the accept queue and
/// teardown must not leak sockets, ports, counters, or outboard memory.
#[test]
fn sequential_connections_do_not_leak() {
    use outboard::testbed::apps::{TtcpReceiver, TtcpSender};
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut w = World::new();
    let a = w.add_host("a", MachineConfig::alpha_3000_400(), stack.clone());
    let b = w.add_host("b", MachineConfig::alpha_3000_400(), stack);
    w.connect_cab(a, IP_A, b, IP_B, Dur::micros(5), 71);
    for round in 0..5u32 {
        let rx_task = TaskId(100 + round * 2);
        let tx_task = TaskId(101 + round * 2);
        let port = 6000 + round as u16;
        w.add_app(
            b,
            Box::new(TtcpReceiver::new(rx_task, port, 64 * 1024)),
            false,
        );
        w.add_app(
            a,
            Box::new(TtcpSender::new(
                tx_task,
                SockAddr::new(IP_B, port),
                64 * 1024,
                256 * 1024,
            )),
            false,
        );
        let ok = w.run_while(w.now() + Dur::secs(30), |w| !finished(w));
        assert!(ok, "round {round} stalled");
    }
    // Give TIME_WAIT holds a moment to expire, then check for leaks.
    let end = w.now() + Dur::secs(3);
    w.run_until(end);
    for (h, side) in [(a, "sender"), (b, "receiver")] {
        if let outboard::stack::driver::IfaceKind::Cab(cab) = &w.hosts[h].kernel.ifaces[0].kind {
            assert_eq!(
                cab.cab.netmem().packet_count(),
                0,
                "{side}: outboard buffers leaked after 5 connections"
            );
            assert_eq!(cab.pending_count(), 0, "{side}: SDMA tokens leaked");
        }
        assert_eq!(
            w.hosts[h].kernel.vm.pinned_page_count(),
            0,
            "{side}: pinned pages leaked"
        );
    }
}
