//! Chaos-engine end-to-end tests: deterministic fault schedules against the
//! ttcp testbed, judged by the oracle and delta-debugged on failure.
//!
//! Covers the acceptance criteria: (1) a seeded chaos run is byte-identical
//! per seed; (2) a planted oracle violation — a checksum-preserving
//! corruption the transport cannot see — is caught, shrunk to a handful of
//! events, and replays the same failure from its serialized repro; plus the
//! degrade/recover flap soak and the partition-heal liveness scenarios.

use outboard::host::MachineConfig;
use outboard::sim::chaos::{ChaosAction, ChaosEvent, ChaosSchedule};
use outboard::sim::Dur;
use outboard::stack::StackConfig;
use outboard::testbed::chaos::{run_chaos, shrink_failure, DEFAULT_LIVENESS_BUDGET};
use outboard::testbed::oracle::violation_category;
use outboard::testbed::ExperimentConfig;

fn base_cfg(total: usize, seed: u64) -> ExperimentConfig {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = total;
    cfg.seed = seed;
    cfg.verify = true;
    cfg
}

#[test]
fn chaos_runs_are_byte_identical_per_seed() {
    const TOTAL: usize = 1024 * 1024;
    let cfg = base_cfg(TOTAL, 77);
    let schedule = ChaosSchedule::generate(77, 5, 2);

    let a = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
    let b = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
    assert!(
        a.passed(),
        "generated schedule must pass: {:?}",
        a.violations
    );
    assert_eq!(
        a.elapsed, b.elapsed,
        "same seed must take identical sim time"
    );
    assert_eq!(
        a.stats.report(),
        b.stats.report(),
        "same seed + schedule must snapshot a byte-identical registry"
    );

    let other = run_chaos(
        &base_cfg(TOTAL, 78),
        &ChaosSchedule::generate(78, 5, 2),
        DEFAULT_LIVENESS_BUDGET,
    );
    assert_ne!(
        a.stats.report(),
        other.stats.report(),
        "different seeds should not collide"
    );
}

#[test]
fn planted_stealth_bug_is_caught_shrunk_and_replayed() {
    const TOTAL: usize = 1024 * 1024;
    let cfg = base_cfg(TOTAL, 1995);

    // Benign background chaos plus the planted bug: a two-byte corruption
    // engineered to preserve the Internet checksum, so only the end-to-end
    // pattern oracle can see it.
    let mut schedule = ChaosSchedule::generate(1995, 5, 2);
    schedule.events.push(ChaosEvent {
        at: Dur::millis(8),
        action: ChaosAction::StealthCorrupt { host: 0 },
    });
    schedule.events.sort_by_key(|e| e.at);

    let outcome = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
    assert!(!outcome.passed(), "the oracle must catch the planted bug");
    assert_eq!(
        outcome.category().as_deref(),
        Some("integrity"),
        "stealth corruption must surface as a stream-integrity violation: {:?}",
        outcome.violations
    );

    // Delta-debug to local minimality: the repro must be tiny.
    let shrunk = shrink_failure(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET)
        .expect("schedule fails, so it must shrink");
    assert!(
        shrunk.schedule.events.len() <= 3,
        "shrunk to {} events, wanted <= 3:\n{}",
        shrunk.schedule.events.len(),
        shrunk.schedule.render()
    );
    assert!(
        shrunk
            .schedule
            .events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::StealthCorrupt { .. })),
        "the culprit event must survive shrinking"
    );

    // The serialized repro replays the same failure category.
    let json = shrunk.schedule.to_json();
    let reparsed = ChaosSchedule::from_json(&json).expect("repro round-trips");
    assert_eq!(reparsed, shrunk.schedule);
    let replay = run_chaos(&cfg, &reparsed, DEFAULT_LIVENESS_BUDGET);
    assert_eq!(
        replay.category().as_deref(),
        Some("integrity"),
        "replayed repro must reproduce the failure: {:?}",
        replay.violations
    );
    assert_eq!(
        replay.violations.first().map(|v| violation_category(v)),
        Some("integrity")
    );
}

#[test]
fn netmem_flap_soak_degrades_and_recovers_every_cycle() {
    const TOTAL: usize = 2 * 1024 * 1024;
    let cfg = base_cfg(TOTAL, 31);

    // Four squeeze/release cycles: reserve all of network memory for
    // 100 ms (long enough to ride out the 2 ms-base retry ladder and force
    // the traditional path) every 150 ms, driving repeated degraded-mode
    // entries and probe-driven recoveries.
    let mut events = Vec::new();
    for k in 0..4u64 {
        events.push(ChaosEvent {
            at: Dur::millis(10 + 150 * k),
            action: ChaosAction::NetmemSqueeze {
                host: 0,
                permille: 1000,
                dur: Dur::millis(100),
            },
        });
    }
    let schedule = ChaosSchedule { seed: 31, events };

    let outcome = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
    assert!(
        outcome.passed(),
        "flap soak failed: {:?}",
        outcome.violations
    );
    assert!(outcome.completed);
    assert_eq!(outcome.chaos.netmem_squeezes, 4);
    assert_eq!(outcome.chaos.heals_applied, 4);

    // The flapping actually exercised degraded mode, and every entry has a
    // matching exit after the final heal (also enforced by the oracle's
    // end-state pass — re-checked here for the counters' sake).
    let entries = outcome
        .stats
        .counter_value("host0.cab0.drv.degraded_entries");
    let exits = outcome.stats.counter_value("host0.cab0.drv.degraded_exits");
    assert!(entries > 0, "squeezes never forced the traditional path");
    assert_eq!(entries, exits, "unbalanced degraded transitions");
}

#[test]
fn partition_heals_after_backoff_ceiling_and_completes() {
    const TOTAL: usize = 512 * 1024;
    let cfg = base_cfg(TOTAL, 5);

    // Partition the fabric mid-transfer and keep it down for 130 s of sim
    // time — long enough for TCP's retransmit backoff to hit its 64 s
    // ceiling — then heal and require the transfer to finish on its own.
    let schedule = ChaosSchedule {
        seed: 5,
        events: vec![ChaosEvent {
            at: Dur::millis(30),
            action: ChaosAction::Partition {
                dur: Dur::secs(130),
            },
        }],
    };

    let outcome = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
    assert!(
        outcome.passed(),
        "partition-heal run failed: {:?}",
        outcome.violations
    );
    assert!(outcome.completed, "transfer did not finish after the heal");
    assert_eq!(outcome.chaos.partitions, 1);
    assert!(
        outcome.stats.counter_value("host0.tcp.retransmit_segs") > 0,
        "a 130 s partition must force retransmissions"
    );
    assert!(
        outcome.stats.counter_value("world.chaos.down_drops") > 0,
        "frames offered during the outage must be counted as down_drops"
    );
}

#[test]
fn every_chaos_action_kind_applies_cleanly() {
    const TOTAL: usize = 2 * 1024 * 1024;
    let cfg = base_cfg(TOTAL, 11);

    let schedule = ChaosSchedule {
        seed: 11,
        events: vec![
            ChaosEvent {
                at: Dur::millis(5),
                action: ChaosAction::DelaySpike {
                    host: 0,
                    extra: Dur::micros(400),
                    dur: Dur::millis(20),
                },
            },
            ChaosEvent {
                at: Dur::millis(10),
                action: ChaosAction::LinkDown {
                    host: 1,
                    dur: Dur::millis(25),
                },
            },
            ChaosEvent {
                at: Dur::millis(40),
                action: ChaosAction::CabWedge {
                    host: 0,
                    mdma: false,
                },
            },
            ChaosEvent {
                at: Dur::millis(55),
                action: ChaosAction::HostPause {
                    host: 1,
                    dur: Dur::millis(10),
                },
            },
            ChaosEvent {
                at: Dur::millis(70),
                action: ChaosAction::NetmemSqueeze {
                    host: 0,
                    permille: 800,
                    dur: Dur::millis(20),
                },
            },
            ChaosEvent {
                at: Dur::millis(100),
                action: ChaosAction::BoardCrash { host: 0 },
            },
            ChaosEvent {
                at: Dur::millis(120),
                action: ChaosAction::Partition {
                    dur: Dur::millis(30),
                },
            },
        ],
    };

    let outcome = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
    assert!(
        outcome.passed(),
        "all-kinds run failed: {:?}",
        outcome.violations
    );
    assert_eq!(outcome.chaos.events_applied, 7);
    assert_eq!(outcome.chaos.link_downs, 1);
    assert_eq!(outcome.chaos.partitions, 1);
    assert_eq!(outcome.chaos.delay_spikes, 1);
    assert_eq!(outcome.chaos.cab_wedges, 1);
    assert_eq!(outcome.chaos.board_crashes, 1);
    assert_eq!(outcome.chaos.netmem_squeezes, 1);
    assert_eq!(outcome.chaos.host_pauses, 1);
    assert_eq!(
        outcome.stats.counter_value("host0.cab0.drv.board_crashes"),
        1,
        "the board crash must reach the driver's counter"
    );
}

#[test]
fn invalid_fault_probabilities_are_rejected_not_run() {
    let mut cfg = base_cfg(64 * 1024, 1);
    cfg.drop_p = 1.5;
    let err = cfg.validate().expect_err("p > 1 must be rejected");
    assert_eq!(err.knob, "drop_p");

    let outcome = run_chaos(&cfg, &ChaosSchedule::default(), DEFAULT_LIVENESS_BUDGET);
    assert_eq!(outcome.category().as_deref(), Some("config"));
    assert!(!outcome.completed);

    cfg.drop_p = 0.01;
    cfg.cab_wedge_p = -0.25;
    assert_eq!(
        cfg.validate()
            .expect_err("negative p must be rejected")
            .knob,
        "cab_wedge_p"
    );
}

#[test]
fn receiver_mdma_wedge_reset_drops_stale_rx_instead_of_corrupting() {
    // Found by the chaos sweep (seed 9, shrunk to this one event): the
    // receiver's MDMA-tx engine wedges while an ACK is outbound, the
    // watchdog board-resets 20 ms later, and the reset lands while a data
    // frame sits between media arrival and its receive interrupt. The stale
    // interrupt carries a pre-reset hardware checksum that still verifies,
    // so the driver must discard it (the buffer died with the reset) rather
    // than queue a descriptor whose copy-out reads freed memory — which
    // surfaced as ~32 KB of zeros at the application under a valid checksum.
    let cfg = base_cfg(8 * 1024 * 1024, 9);
    let schedule = ChaosSchedule {
        seed: 9,
        events: vec![ChaosEvent {
            at: Dur::nanos(73_950_000),
            action: ChaosAction::CabWedge {
                host: 1,
                mdma: true,
            },
        }],
    };

    let outcome = run_chaos(&cfg, &schedule, DEFAULT_LIVENESS_BUDGET);
    assert!(
        outcome.passed(),
        "receiver wedge-reset run failed: {:?}",
        outcome.violations
    );
    assert!(outcome.completed, "transfer must finish after the reset");
    assert_eq!(
        outcome
            .stats
            .counter_value("host1.cab0.drv.watchdog_resets"),
        1,
        "the wedge must trigger exactly one watchdog reset"
    );
    assert_eq!(
        outcome.stats.counter_value("host1.cab0.drv.stale_rx_drops"),
        1,
        "the reset-crossing frame must be discarded as stale, not delivered"
    );
}
