//! Fault-matrix soak and recovery tests: the driver's "transient
//! out-of-resources" philosophy (§4.4.3) under sustained abuse.
//!
//! Three scenarios: (1) a soak with simultaneous link faults (drop, corrupt,
//! duplicate) and CAB allocation failures — the transfer must complete
//! byte-identical with conservation invariants intact and be deterministic
//! per seed; (2) network-memory starvation mid-transfer — the interface must
//! degrade to the traditional path, keep moving bytes, and recover when
//! memory returns; (3) a wedged SDMA engine — the watchdog must reset the
//! CAB, rescue outboard socket-buffer bytes, and rebuild transmission with
//! no data loss.

use outboard::host::MachineConfig;
use outboard::sim::{Dur, Time};
use outboard::stack::StackConfig;
use outboard::testbed::apps::TtcpReceiver;
use outboard::testbed::experiment::build_ttcp_world;
use outboard::testbed::oracle;
use outboard::testbed::{run_ttcp, ExperimentConfig, Metrics, World};

fn base_cfg(total: usize, seed: u64) -> ExperimentConfig {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = total;
    cfg.seed = seed;
    cfg
}

/// The invariants that must survive any fault mix. Deliberately does NOT
/// require `ip.errors == 0`: fault recovery may tear down routes mid-RST.
/// The identities themselves live in `testbed::oracle` and are shared with
/// the chaos engine.
fn assert_conserved_under_faults(m: &Metrics, total: usize) {
    assert!(m.completed, "transfer stalled: {m:?}");
    assert_eq!(m.bytes, total, "receiver did not read the whole transfer");
    assert_eq!(m.verify_errors, 0, "payload corrupted end-to-end");
    let violations = oracle::conservation_violations(&m.stats, 2);
    assert!(
        violations.is_empty(),
        "conservation broken: {violations:#?}"
    );
}

#[test]
fn fault_matrix_soak_survives_and_verifies() {
    const TOTAL: usize = 4 * 1024 * 1024;
    let mut cfg = base_cfg(TOTAL, 1995);
    cfg.drop_p = 0.05;
    cfg.corrupt_p = 0.01;
    cfg.dup_p = 0.01;
    cfg.cab_alloc_fail_p = 0.05;

    let m = run_ttcp(&cfg);
    assert_conserved_under_faults(&m, TOTAL);

    // The matrix actually fired: every configured fate occurred, and the
    // driver retried failed allocations rather than panicking or stalling.
    let r = &m.stats;
    assert!(
        r.counter_value("world.faults.dropped") > 0,
        "no drops drawn"
    );
    assert!(
        r.counter_value("world.faults.corrupted") > 0,
        "no corruption drawn"
    );
    assert!(
        r.counter_value("world.faults.duplicated") > 0,
        "no duplication drawn"
    );
    assert!(
        r.counter_value("host0.cab0.drv.tx_retries") > 0,
        "alloc failures never exercised the retry path"
    );
    assert!(m.retransmits > 0, "link loss should force retransmissions");

    // Determinism: an identically-seeded soak reproduces byte-identically.
    let m2 = run_ttcp(&cfg);
    assert_eq!(
        m.stats.report(),
        m2.stats.report(),
        "identically-seeded soaks diverged"
    );

    // And a different seed draws a different fault history.
    let mut other = cfg.clone();
    other.seed = 2025;
    let m3 = run_ttcp(&other);
    assert_conserved_under_faults(&m3, TOTAL);
    assert_ne!(
        m.stats.report(),
        m3.stats.report(),
        "different seeds should not collide"
    );
}

fn receiver_bytes(w: &World) -> usize {
    w.hosts[1].apps[0]
        .as_ref()
        .and_then(|a| a.as_any().downcast_ref::<TtcpReceiver>())
        .map(|r| r.bytes_read)
        .unwrap_or(0)
}

fn both_finished(w: &World) -> bool {
    w.hosts
        .iter()
        .all(|h| h.apps[0].as_ref().map(|a| a.finished()).unwrap_or(false))
}

#[test]
fn netmem_starvation_degrades_then_recovers() {
    const TOTAL: usize = 2 * 1024 * 1024;
    let cfg = base_cfg(TOTAL, 9);
    let mut w = build_ttcp_world(&cfg);
    let deadline = Time::ZERO + Dur::secs(30);

    // Let the transfer reach steady state first.
    let warmed = w.run_while(deadline, |w| receiver_bytes(w) < 256 * 1024);
    assert!(warmed, "transfer never got going");

    // Squeeze every page of the sender CAB's network memory: allocation
    // failures are now persistent, not transient.
    let pages = {
        let ci = w.hosts[0].kernel.ifaces[0].cab().expect("sender CAB");
        let p = ci.cab.netmem().pages_total();
        ci.cab.squeeze_netmem(p);
        p
    };
    assert!(pages > 0);

    // Ride out the retry ladder (base 2 ms doubling, 5 rounds) plus slack:
    // the driver must give up and fall back to the traditional path.
    let blackout_end = w.now() + Dur::millis(100);
    w.run_until(blackout_end);
    {
        let ci = w.hosts[0].kernel.ifaces[0].cab().expect("sender CAB");
        assert!(
            ci.health.stats.degraded_entries >= 1,
            "starvation never entered degraded mode: {:?}",
            ci.health.stats
        );
        assert!(
            ci.health.degraded,
            "interface should still be degraded while starved"
        );
        ci.cab.squeeze_netmem(0);
    }

    // With memory back, the health probe must re-enable the single-copy
    // path and the transfer must finish intact.
    let done = w.run_while(deadline, |w| !both_finished(w));
    assert!(done, "transfer did not finish after memory returned");
    let rx = w.hosts[1].apps[0]
        .as_ref()
        .and_then(|a| a.as_any().downcast_ref::<TtcpReceiver>())
        .expect("receiver app");
    assert_eq!(rx.bytes_read, TOTAL, "data lost across degradation");
    assert_eq!(rx.verify_errors, 0, "data corrupted across degradation");

    let elapsed = w.now() - Time::ZERO;
    let r = w.metrics(elapsed);
    assert!(r.counter_value("host0.cab0.drv.degraded_entries") >= 1);
    assert!(
        r.counter_value("host0.cab0.drv.degraded_exits") >= 1,
        "probe never recovered the interface"
    );
    assert!(
        r.counter_value("host0.cab0.drv.fallback_bytes") > 0,
        "degraded mode moved no bytes over the traditional path"
    );
    assert_eq!(
        r.counter_value("host0.cab0.drv.degraded"),
        0,
        "interface still degraded at the end of the run"
    );
}

#[test]
fn wedged_sdma_engine_is_reset_by_watchdog_without_data_loss() {
    const TOTAL: usize = 2 * 1024 * 1024;
    let cfg = base_cfg(TOTAL, 31);
    let mut w = build_ttcp_world(&cfg);
    let deadline = Time::ZERO + Dur::secs(30);

    let warmed = w.run_while(deadline, |w| receiver_bytes(w) < 256 * 1024);
    assert!(warmed, "transfer never got going");

    // Wedge the sender's SDMA engine on its next transfer. The engine stays
    // wedged until a reset: only the watchdog can get things moving again.
    w.hosts[0].kernel.ifaces[0]
        .cab()
        .expect("sender CAB")
        .cab
        .faults
        .force_sdma_wedge_next();

    let done = w.run_while(deadline, |w| !both_finished(w));
    assert!(done, "transfer did not finish after the wedge");
    let rx = w.hosts[1].apps[0]
        .as_ref()
        .and_then(|a| a.as_any().downcast_ref::<TtcpReceiver>())
        .expect("receiver app");
    assert_eq!(rx.bytes_read, TOTAL, "data lost across the watchdog reset");
    assert_eq!(rx.verify_errors, 0, "data corrupted across the reset");

    let elapsed = w.now() - Time::ZERO;
    let r = w.metrics(elapsed);
    assert!(
        r.counter_value("host0.cab0.drv.watchdog_resets") >= 1,
        "watchdog never fired"
    );
    assert_eq!(
        r.counter_value("host0.cab0.drv.degraded"),
        0,
        "interface should have recovered after the reset"
    );
    // The engine is demonstrably unwedged: the transfer kept using it.
    let ci = w.hosts[0].kernel.ifaces[0].cab().expect("sender CAB");
    assert!(!ci.cab.any_engine_wedged());
}
