//! The `dma-check` ownership journal catches the hazards the paper's
//! DMA-counter handshake (§4.4.2) exists to prevent: a host free or a
//! second engine touching a packet while a DMA engine still owns it, and
//! dangling transfers on freed buffers. These tests provoke each violation
//! at the device interface and check the typed error surfaces.
//!
//! Build with `cargo test --features dma-check --test dma_check`.
#![cfg(feature = "dma-check")]

use bytes::Bytes;
use outboard::cab::{Cab, CabConfig, CabError, DmaEngine, SdmaTx, SgEntry, ViolationKind};
use outboard::host::HostMem;
use outboard::sim::Time;

const LEN: usize = 4096;

/// Gather `LEN` inline bytes into a fresh packet, returning the id and the
/// SDMA completion time.
fn gather(cab: &mut Cab, now: Time) -> (outboard::cab::PacketId, Time) {
    let hm = HostMem::new();
    let id = cab.alloc_packet(LEN).expect("netmem");
    let ev = cab
        .sdma_tx(
            SdmaTx {
                packet: id,
                sg: vec![SgEntry::Inline(Bytes::from(vec![0xa5u8; LEN]))],
                csum: None,
                reuse_body_csum: false,
                interrupt_on_complete: false,
                token: 0,
            },
            now,
            &hm,
        )
        .expect("sdma");
    (id, ev.at())
}

#[test]
fn mdma_during_sdma_window_is_overlapping_dma() {
    let mut cab = Cab::new(1, CabConfig::default());
    let (id, done) = gather(&mut cab, Time::ZERO);
    assert!(done > Time::ZERO, "gather must occupy the engine");
    // Starting the media transfer at issue time — inside the gather window
    // — is exactly the overlap the journal must reject.
    let err = cab.mdma_tx(id, 2, 0, Time::ZERO, false).unwrap_err();
    let CabError::Ownership(v) = err else {
        panic!("expected ownership violation, got {err:?}");
    };
    assert_eq!(v.kind, ViolationKind::OverlappingDma);
    assert_eq!(v.actor, DmaEngine::MdmaTx);
    assert_eq!(v.holder, DmaEngine::Sdma);
    assert_eq!(cab.ownership_violations().len(), 1);
    // At the gather's completion time the window has closed.
    cab.mdma_tx(id, 2, 0, done, false).expect("sequential mdma");
}

#[test]
fn wedged_sdma_seizes_the_buffer_until_reset() {
    let mut cab = Cab::new(1, CabConfig::default());
    let (id, done) = gather(&mut cab, Time::ZERO);
    // Wedge the engine mid-transfer on a second gather into the same
    // buffer (the driver's header-refresh retransmit shape).
    cab.faults.force_sdma_wedge_next();
    let hm = HostMem::new();
    let err = cab
        .sdma_tx(
            SdmaTx {
                packet: id,
                sg: vec![SgEntry::Inline(Bytes::from(vec![0x5au8; LEN]))],
                csum: None,
                reuse_body_csum: false,
                interrupt_on_complete: false,
                token: 1,
            },
            done,
            &hm,
        )
        .unwrap_err();
    assert!(matches!(err, CabError::EngineWedged(_)), "got {err:?}");
    // The wedged engine holds an open-ended window: the media engine may
    // not touch the packet no matter how much time passes…
    let much_later = done + outboard::sim::Dur::from_secs_f64(1.0);
    let err = cab.mdma_tx(id, 2, 0, much_later, false).unwrap_err();
    let CabError::Ownership(v) = err else {
        panic!("expected ownership violation, got {err:?}");
    };
    assert_eq!(v.kind, ViolationKind::OverlappingDma);
    assert_eq!(v.holder, DmaEngine::Sdma);
    // …and the host may not free it: the free is refused and recorded.
    let violations_before = cab.ownership_violations().len();
    assert!(!cab.free_packet(id, much_later), "free must be refused");
    let vs = cab.ownership_violations();
    assert_eq!(vs.len(), violations_before + 1);
    let v = vs.last().unwrap();
    assert_eq!(v.kind, ViolationKind::FreeWhileDma);
    assert_eq!(v.actor, DmaEngine::Host);
    assert_eq!(v.holder, DmaEngine::Sdma);
    // The buffer is only reclaimed by the watchdog's board reset, which
    // clears every window along with the outboard state.
    assert_eq!(cab.reset(), 1, "reset reclaims the seized packet");
}

#[test]
fn transfer_on_freed_packet_is_use_after_free() {
    let mut cab = Cab::new(1, CabConfig::default());
    let (id, done) = gather(&mut cab, Time::ZERO);
    assert!(cab.free_packet(id, done), "free at window close is clean");
    let err = cab.mdma_tx(id, 2, 0, done, false).unwrap_err();
    let CabError::Ownership(v) = err else {
        panic!("expected ownership violation, got {err:?}");
    };
    assert_eq!(v.kind, ViolationKind::UseAfterFree);
    assert_eq!(v.actor, DmaEngine::MdmaTx);
    // The id was never reused, so the journal knows who held it last.
    assert_eq!(v.holder, DmaEngine::Sdma);
}

#[test]
fn never_allocated_id_is_a_plain_unknown_packet() {
    let mut cab = Cab::new(1, CabConfig::default());
    let err = cab
        .mdma_tx(outboard::cab::PacketId(999), 2, 0, Time::ZERO, false)
        .unwrap_err();
    assert!(
        matches!(err, CabError::UnknownPacket(_)),
        "a typo'd id is not a dangling DMA: {err:?}"
    );
    assert!(cab.ownership_violations().is_empty());
}

#[test]
fn clean_traffic_records_windows_and_no_violations() {
    let mut cab = Cab::new(1, CabConfig::default());
    let mut now = Time::ZERO;
    for _ in 0..8 {
        let (id, done) = gather(&mut cab, now);
        let ev = cab.mdma_tx(id, 2, 0, done, false).expect("mdma");
        now = ev.at();
        assert!(cab.free_packet(id, now), "free after media transfer");
    }
    assert!(cab.ownership_violations().is_empty());
    assert!(
        cab.ownership_transitions() >= 16,
        "journal must have observed the traffic"
    );
}
