//! Conservation invariants and determinism of the metrics registry.
//!
//! The registry is only trustworthy if independent counters agree with each
//! other: bytes the sender's TCP pushed (minus retransmitted bytes) must be
//! the bytes the receiver read, every transmitted segment must have been
//! checksummed exactly once (in hardware or in software), and the per-link
//! byte counters must sum to the fabric total. These hold with and without
//! fault injection — and two identically-seeded runs must produce
//! byte-identical reports.

use outboard::host::MachineConfig;
use outboard::sim::MetricsRegistry;
use outboard::stack::StackConfig;
use outboard::testbed::{run_ttcp, ExperimentConfig, Metrics};

const TOTAL: usize = 2 * 1024 * 1024;

fn run(single_copy: bool, drop_p: f64, seed: u64) -> Metrics {
    let stack = if single_copy {
        let mut s = StackConfig::single_copy();
        s.force_single_copy = true;
        s
    } else {
        StackConfig::unmodified()
    };
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = TOTAL;
    cfg.drop_p = drop_p;
    cfg.seed = seed;
    run_ttcp(&cfg)
}

/// Every conservation law the registry must satisfy for one finished run.
fn assert_conserved(m: &Metrics) {
    assert!(m.completed, "transfer stalled");
    let r = &m.stats;

    // Data conservation: unique TCP payload bytes the sender emitted are
    // exactly the bytes the receiving application read.
    let sent = r.counter_value("host0.tcp.bytes_sent");
    let retx = r.counter_value("host0.tcp.bytes_retx");
    assert_eq!(
        sent - retx,
        m.bytes as u64,
        "bytes on wire minus retransmitted bytes != bytes delivered (sent {sent}, retx {retx})"
    );
    assert_eq!(m.bytes, TOTAL, "receiver did not read the whole transfer");

    // Checksum conservation, per host: every transport packet emitted on a
    // non-loopback interface was checksummed exactly once, outboard or in
    // software. RSTs ride the same path but are not counted as segments.
    for h in 0..2 {
        let hw = r.counter_value(&format!("host{h}.csum.hw"));
        let sw = r.counter_value(&format!("host{h}.csum.sw"));
        let segs = r.counter_value(&format!("host{h}.tcp.segs_out"));
        let rsts = r.counter_value(&format!("host{h}.tcp.rst_sent"));
        let udp = r.counter_value(&format!("host{h}.udp.datagrams_out"));
        assert_eq!(
            hw + sw,
            segs + rsts + udp,
            "host{h}: hw {hw} + sw {sw} checksums != {segs} segments + {rsts} rsts + {udp} datagrams"
        );
        assert_eq!(
            r.counter_value(&format!("host{h}.ip.errors")),
            0,
            "host{h}: unroutable packets would void the checksum invariant"
        );
    }

    // Fabric conservation: what each link admitted sums to the world total,
    // and each link's admissions split into deliveries plus fault fates.
    let link_bytes: u64 = r
        .iter()
        .filter(|(name, _)| name.starts_with("link.") && name.ends_with(".bytes_in"))
        .map(|(name, _)| r.counter_value(name))
        .sum();
    assert_eq!(
        link_bytes,
        r.counter_value("world.bytes_on_fabric"),
        "per-link byte counters do not sum to the fabric total"
    );
    let frames_in: u64 = r
        .iter()
        .filter(|(name, _)| name.starts_with("link.") && name.ends_with(".frames_in"))
        .map(|(name, _)| r.counter_value(name))
        .sum();
    assert_eq!(frames_in, r.counter_value("world.frames_on_fabric"));
}

#[test]
fn clean_run_conserves_bytes_checksums_and_frames() {
    let m = run(true, 0.0, 42);
    assert_conserved(&m);
    assert_eq!(m.retransmits, 0, "clean link must not retransmit");
    assert!(
        m.stats.counter_value("host0.csum.hw") > 0,
        "single-copy run never used the outboard engine"
    );
}

#[test]
fn unmodified_stack_conserves_too() {
    let m = run(false, 0.0, 42);
    assert_conserved(&m);
    assert_eq!(m.stats.counter_value("host0.csum.hw"), 0);
}

#[test]
fn lossy_run_conserves_despite_retransmissions() {
    let m = run(true, 0.02, 7);
    assert_conserved(&m);
    assert!(m.retransmits > 0, "2% drop must force retransmissions");
    // The registry and the trace-ring-free Metrics field agree.
    assert_eq!(
        m.retransmits,
        m.stats.counter_value("host0.tcp.retransmit_segs")
    );
    // Dropped frames were admitted (bytes_in counts them) but not delivered.
    let dropped: u64 = m
        .stats
        .iter()
        .filter(|(name, _)| name.starts_with("link.") && name.ends_with(".faults.dropped"))
        .map(|(name, _)| m.stats.counter_value(name))
        .sum();
    assert!(dropped > 0, "fault injection never fired");
}

#[test]
fn identical_seeds_produce_byte_identical_reports() {
    let a = run(true, 0.01, 1234);
    let b = run(true, 0.01, 1234);
    assert_eq!(a.stats, b.stats, "registries diverged between runs");
    assert_eq!(a.stats.report(), b.stats.report());
    assert_eq!(a.stats.to_json(), b.stats.to_json());
    assert_eq!(a.stats.to_csv(), b.stats.to_csv());
    // And a different seed actually changes something (the reports are not
    // trivially constant).
    let c = run(true, 0.01, 4321);
    assert_ne!(
        a.stats.report(),
        c.stats.report(),
        "reports insensitive to the seed"
    );
}

#[test]
fn report_names_the_acceptance_metrics() {
    let m = run(true, 0.0, 42);
    let report = m.stats.report();
    for needle in [
        "host0.cab0.sdma.busy_frac",
        "host0.cab0.mdma_tx.busy_frac",
        "host0.cab0.netmem.pages_used",
        "host0.cpu.user_share",
        "host0.cpu.sys_share",
        "host0.tcp.segs_out",
        "host0.tcp.retransmits",
        "host0.vm.cache_hit_rate",
        "world.bytes_on_fabric",
    ] {
        assert!(report.contains(needle), "report lacks {needle}:\n{report}");
    }
    let _ = MetricsRegistry::default(); // the registry is constructible empty
}
