//! Causal-tracing integration tests: trace determinism, span conservation
//! (with and without the fault matrix), critical-path exactness, and the
//! completeness of the per-packet causal chain.

use outboard::host::MachineConfig;
use outboard::stack::StackConfig;
use outboard::testbed::{run_ttcp, ExperimentConfig, Metrics};

const TOTAL: usize = 1024 * 1024;

fn traced(seed: u64, faults: bool) -> Metrics {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = TOTAL;
    cfg.seed = seed;
    cfg.trace_spans = true;
    if faults {
        cfg.drop_p = 0.01;
        cfg.cab_alloc_fail_p = 0.02;
        cfg.cab_sdma_fail_p = 0.01;
        cfg.cab_mdma_fail_p = 0.01;
        cfg.cab_wedge_p = 0.05;
    }
    run_ttcp(&cfg)
}

/// The conservation identity the sink maintains: every span that was
/// opened either closed or was explicitly dropped by run teardown.
fn assert_conserved(m: &Metrics) {
    let opened = m.stats.counter_value("world.spans.opened");
    let closed = m.stats.counter_value("world.spans.closed");
    let dropped = m.stats.counter_value("world.spans.dropped");
    assert!(opened > 0, "a traced run must record spans");
    assert_eq!(
        opened,
        closed + dropped,
        "span leak: opened {opened} != closed {closed} + dropped {dropped}"
    );
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let a = traced(7, false);
    let b = traced(7, false);
    let (ta, tb) = (a.trace_json.unwrap(), b.trace_json.unwrap());
    assert!(!ta.is_empty() && ta.contains("\"traceEvents\""));
    assert_eq!(ta, tb, "same seed must produce byte-identical traces");
    // And the stats fold must agree too.
    assert_eq!(a.stats.to_json(), b.stats.to_json());
}

#[test]
fn different_seeds_still_trace_complete_chains() {
    // The complete single-copy causal chain of the acceptance criterion:
    // syscall → kernel output → SDMA → checksum → MDMA → wire → MDMA-rx →
    // demux → sockbuf dwell → sys_recv.
    let m = traced(11, false);
    assert!(m.completed);
    let t = m.trace_json.as_ref().unwrap();
    for stage in [
        "syscall",
        "kernel_output",
        "sdma",
        "checksum",
        "mdma_tx",
        "wire",
        "mdma_rx",
        "demux",
        "sockbuf",
        "sys_recv",
        "ack",
    ] {
        assert!(
            t.contains(&format!("\"name\":\"{stage}\"")),
            "trace is missing stage {stage}"
        );
    }
    // Chrome trace-event schema essentials.
    assert!(t.contains("\"displayTimeUnit\":\"ns\""));
    assert!(t.contains("\"ph\":\"X\"") && t.contains("\"pid\":"));
    assert!(t.contains("\"ph\":\"s\"") && t.contains("\"ph\":\"f\""));
    assert_conserved(&m);
}

#[test]
fn span_conservation_holds_under_fault_matrix() {
    let m = traced(23, true);
    assert_conserved(&m);
    // Fault detours must themselves be visible as spans.
    let t = m.trace_json.as_ref().unwrap();
    assert!(
        t.contains("\"name\":\"retry_dwell\"") || m.stats.counter_value("world.faults.dropped") > 0,
        "faulty run shows neither retry dwell spans nor link drops"
    );
}

#[test]
fn critical_path_attributes_all_latency_to_named_stages() {
    let m = traced(7, false);
    let cp = m.critical_path.expect("traced run yields a critical path");
    let total: u64 = cp.shares.iter().map(|s| s.ns).sum();
    assert_eq!(
        total, cp.total_ns,
        "stage shares must sum exactly to the end-to-end latency"
    );
    assert_eq!(cp.total_ns, cp.end.nanos() - cp.start.nanos());
    assert!(!cp.shares.is_empty());
    let dominant = cp.dominant();
    assert_eq!(
        dominant, cp.shares[0].stage,
        "dominant stage must be the largest share"
    );
    assert!(cp.shares.iter().all(|s| s.ns <= cp.shares[0].ns));
    // 100% of latency lands on named stages (idle gaps are named too).
    assert!(cp.shares.iter().all(|s| !s.stage.is_empty()));
}

#[test]
fn untraced_runs_publish_no_span_metrics() {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 64 * 1024);
    cfg.total_bytes = TOTAL;
    let m = run_ttcp(&cfg);
    assert!(m.trace_json.is_none());
    assert!(m.critical_path.is_none());
    assert_eq!(m.stats.counter_value("world.spans.opened"), 0);
    assert!(!m.stats.to_json().contains("world.spans."));
    // The trace-eviction counter is published unconditionally (satellite:
    // eviction must be detectable from artifacts).
    assert!(m.stats.to_json().contains("world.trace.evicted"));
}
