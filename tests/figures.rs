//! Shape assertions over the headline evaluation (Figures 5 and 6): the
//! relationships the paper reports must hold in the simulation. These run a
//! handful of full-system transfers, so totals are kept modest.

use outboard::host::MachineConfig;
use outboard::stack::StackConfig;
use outboard::testbed::{raw_hippi_throughput, run_ttcp, ExperimentConfig};

fn point(machine: &MachineConfig, single: bool, write_kb: usize) -> outboard::testbed::Metrics {
    let stack = if single {
        let mut s = StackConfig::single_copy();
        s.force_single_copy = true;
        s
    } else {
        StackConfig::unmodified()
    };
    let mut cfg = ExperimentConfig::new(machine.clone(), stack, write_kb * 1024);
    cfg.total_bytes = 4 * 1024 * 1024;
    cfg.verify = false;
    let m = run_ttcp(&cfg);
    assert!(m.completed, "{}KB {single}: {m:?}", write_kb);
    m
}

/// Figure 5(c): the modified stack is far more efficient at large writes
/// ("almost three times") and less efficient at tiny ones, crossing in the
/// single-digit-KB band.
#[test]
fn fig5_efficiency_shape() {
    let m400 = MachineConfig::alpha_3000_400();
    let sc_big = point(&m400, true, 512);
    let un_big = point(&m400, false, 512);
    let ratio = sc_big.sender_efficiency_mbps / un_big.sender_efficiency_mbps;
    assert!(
        (2.3..3.3).contains(&ratio),
        "large-write efficiency ratio {ratio} (paper: ~3x)"
    );
    let sc_small = point(&m400, true, 2);
    let un_small = point(&m400, false, 2);
    assert!(
        sc_small.sender_efficiency_mbps < un_small.sender_efficiency_mbps,
        "single-copy must lose at 2 KB writes"
    );
    let sc_16 = point(&m400, true, 16);
    let un_16 = point(&m400, false, 16);
    assert!(
        sc_16.sender_efficiency_mbps > un_16.sender_efficiency_mbps,
        "single-copy must win by 16 KB writes"
    );
}

/// Figure 5(a/b): similar throughput at large writes, much lower CPU for
/// the single-copy stack; raw HIPPI bounds both.
#[test]
fn fig5_throughput_and_utilization_shape() {
    let m400 = MachineConfig::alpha_3000_400();
    let sc = point(&m400, true, 256);
    let un = point(&m400, false, 256);
    let raw = raw_hippi_throughput(&m400, 32 * 1024, 200);
    let rel = (sc.throughput_mbps - un.throughput_mbps).abs() / un.throughput_mbps;
    assert!(rel < 0.1, "throughputs should be similar at 256 KB: {rel}");
    assert!(
        sc.throughput_mbps <= raw * 1.02,
        "raw HIPPI is an upper bound"
    );
    assert!(
        sc.sender_utilization < un.sender_utilization * 0.6,
        "single-copy must leave far more CPU: {} vs {}",
        sc.sender_utilization,
        un.sender_utilization
    );
}

/// Figure 6: on the half-speed machine the unmodified stack saturates its
/// CPU and the single-copy stack delivers higher throughput.
#[test]
fn fig6_slow_machine_inversion() {
    let lx = MachineConfig::alpha_3000_300lx();
    let sc = point(&lx, true, 512);
    let un = point(&lx, false, 512);
    assert!(
        un.sender_utilization > 0.95,
        "unmodified stack should saturate the LX: {}",
        un.sender_utilization
    );
    assert!(
        sc.throughput_mbps > un.throughput_mbps,
        "single-copy should out-run the CPU-bound stack: {} vs {}",
        sc.throughput_mbps,
        un.throughput_mbps
    );
}

/// §7.2's window remark: a smaller TCP window trades throughput for a
/// slightly better efficiency on the unmodified stack (cache locality).
#[test]
fn window_size_cache_effect() {
    let m400 = MachineConfig::alpha_3000_400();
    let run_with_window = |kb: usize| {
        let mut stack = StackConfig::unmodified();
        stack.sock_buf = kb * 1024;
        let mut cfg = ExperimentConfig::new(m400.clone(), stack, 256 * 1024);
        cfg.total_bytes = 4 * 1024 * 1024;
        cfg.verify = false;
        run_ttcp(&cfg)
    };
    let small = run_with_window(64);
    let big = run_with_window(512);
    assert!(small.completed && big.completed);
    assert!(
        small.throughput_mbps < big.throughput_mbps,
        "smaller window, lower throughput"
    );
    assert!(
        small.sender_efficiency_mbps > big.sender_efficiency_mbps,
        "smaller window, slightly higher efficiency: {} vs {}",
        small.sender_efficiency_mbps,
        big.sender_efficiency_mbps
    );
}

/// The receiver's efficiency tracks the sender's ("the results on the
/// receiver are similar", §7.2).
#[test]
fn receiver_efficiency_is_similar() {
    let m400 = MachineConfig::alpha_3000_400();
    for single in [false, true] {
        let p = point(&m400, single, 256);
        let ratio = p.receiver_efficiency_mbps / p.sender_efficiency_mbps;
        assert!(
            (0.5..2.0).contains(&ratio),
            "single={single}: receiver {:.0} vs sender {:.0}",
            p.receiver_efficiency_mbps,
            p.sender_efficiency_mbps
        );
    }
}

/// Soak: a 64 MB single-copy transfer (ignored by default; run with
/// `cargo test --release -- --ignored`).
#[test]
#[ignore = "long-running soak; use --ignored"]
fn soak_64mb_single_copy() {
    let mut stack = StackConfig::single_copy();
    stack.force_single_copy = true;
    let mut cfg = ExperimentConfig::new(MachineConfig::alpha_3000_400(), stack, 256 * 1024);
    cfg.total_bytes = 64 * 1024 * 1024;
    let m = run_ttcp(&cfg);
    assert!(m.completed);
    assert_eq!(m.bytes, 64 * 1024 * 1024);
    assert_eq!(m.verify_errors, 0);
    assert!(m.throughput_mbps > 100.0);
}
